"""Consistency oracle: a shadow, instantly-consistent cache directory.

The paper's defining trade-off is *weak inter-node consistency*:
directory updates propagate asynchronously, so nodes act on stale
replicas and suffer **false misses** (executing work a peer already
cached) and **false hits** (fetching an entry the owner already
dropped).  ``NodeStats`` counts those anomalies, but flat counters
cannot say *when* they happened, *which* broadcast's propagation lag
caused them, or what each one cost in latency.

The :class:`ConsistencyOracle` answers those questions.  It maintains an
*ideal* global directory — the union of every node's real cache
contents with **zero** metadata propagation delay — alongside the real
replicated one, and classifies every request at completion:

====================  ======================================================
``local-hit``         served from the node's own cache
``remote-hit``        fetched from a peer's cache
``coalesced``         waited for an in-progress identical execution
``false-hit``         went remote, but the owner had already dropped it
``false-miss-1``      executed while an identical execution was in flight
                      on the same node (the paper's in-flight window)
``false-miss-2``      executed, and a peer's copy became visible in our
                      replica only during the execution (directory lag)
``miss-cold``         executed; no node ever produced this result
``miss-capacity``     executed; the last copy was evicted for capacity
``miss-ttl``          executed; the last copy expired (TTL)
``miss-invalidated``  executed; the last copy was invalidated/flushed
``miss-race``         executed although the ideal directory had a live
                      copy at request start — a window the legacy
                      counters attribute later (double-cached) or a
                      lookup/purge race
``uncacheable``       ruled out of caching by configuration
``file``              static file request
====================  ======================================================

Each anomaly is tagged with the directory-update broadcast whose
propagation lag caused it (when one is attributable) and with the time
the detour wasted versus the ideal outcome.  Broadcast applications are
sampled into a staleness-window distribution (wire time vs apply lag).
Under the summary-indicator directory protocols (``digest`` / ``bloom``,
see :mod:`repro.core.dirsync`) there is no per-update broadcast to
blame: anomalies with no attributable message are tagged with the
``indicator`` cause instead, so ``repro audit`` separates digest/filter
approximation error from broadcast propagation lag.

The oracle is **zero-cost when off**: instrumented sites pay one
``is None`` check, exactly like the span tracer.  It never schedules
simulation events or consumes random numbers, so attaching it does not
perturb a deterministic run; export is sorted-key JSONL, so two
same-seed runs produce byte-identical audits.
"""

from __future__ import annotations

import itertools
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..metrics.ascii import sparkline
from ..metrics.reporting import render_table

from .ioutil import meta_line, read_text, write_text

__all__ = [
    "ConsistencyOracle",
    "RequestAudit",
    "AuditDump",
    "AUDIT_CLASSES",
    "load_audit",
    "render_taxonomy",
    "render_staleness",
    "render_anomaly_timeline",
    "render_audit_report",
]

#: Every classification a finished request can receive (exactly one each).
AUDIT_CLASSES = (
    "local-hit",
    "remote-hit",
    "coalesced",
    "false-hit",
    "false-miss-1",
    "false-miss-2",
    "miss-cold",
    "miss-capacity",
    "miss-ttl",
    "miss-invalidated",
    "miss-race",
    "uncacheable",
    "file",
)

#: Classes that are consistency anomalies (the audit's reason to exist).
ANOMALY_CLASSES = ("false-hit", "false-miss-1", "false-miss-2", "miss-race")


class _ShadowEntry:
    """Ideal-directory record: where a result lives and until when."""

    __slots__ = ("owner", "created", "expires")

    def __init__(self, owner: str, created: float, expires: float):
        self.owner = owner
        self.created = created
        self.expires = expires

    def live(self, now: float) -> bool:
        return now < self.expires


class _PendingBroadcast:
    """One directory update sent to one peer, not yet applied there."""

    __slots__ = ("bcast_id", "kind", "owner", "url", "sent", "dropped")

    def __init__(self, bcast_id: int, kind: str, owner: str, url: str, sent: float):
        self.bcast_id = bcast_id
        self.kind = kind
        self.owner = owner
        self.url = url
        self.sent = sent
        self.dropped = False


class RequestAudit:
    """One request's consistency anatomy, filled in along the request path."""

    __slots__ = (
        "run", "node", "url", "kind", "started", "finished", "outcome",
        "ideal", "ideal_owner", "miss_reason",
        "uncacheable", "local_hit", "remote_hit",
        "false_hit_retries", "coalesced_waits",
        "executed", "duplicate", "insert_race", "discarded",
        "exec_seconds", "wasted_seconds",
        "bcast_id", "bcast_kind", "staleness", "inflight_window",
    )

    def __init__(self, run: int, node: str, url: str, kind: str, started: float):
        self.run = run
        self.node = node
        self.url = url
        self.kind = kind
        self.started = started
        self.finished: Optional[float] = None
        self.outcome: Optional[str] = None
        #: What an instantly-consistent system would have done at
        #: request start: "local-hit" / "remote-hit" / "miss".
        self.ideal: Optional[str] = None
        self.ideal_owner: Optional[str] = None
        #: Why the ideal view also missed: cold / capacity / ttl / invalidated.
        self.miss_reason: Optional[str] = None
        self.uncacheable = False
        self.local_hit = False
        self.remote_hit = False
        self.false_hit_retries = 0
        self.coalesced_waits = 0
        self.executed = False
        self.duplicate = False      # type-1 window (in-flight duplicate)
        self.insert_race = False    # type-2 window (peer copy seen at insert)
        self.discarded = False
        self.exec_seconds = 0.0
        #: Seconds the consistency detour cost versus the ideal outcome:
        #: failed remote round-trips for false hits, the redundant
        #: execution for false misses.
        self.wasted_seconds = 0.0
        #: The directory-update broadcast whose propagation lag caused the
        #: anomaly, when one is attributable.
        self.bcast_id: Optional[int] = None
        self.bcast_kind: Optional[str] = None
        #: Age of that broadcast when the anomaly surfaced (seconds).
        self.staleness: Optional[float] = None
        #: For type-1 false misses: how long the first identical execution
        #: had already been running.
        self.inflight_window: Optional[float] = None

    @property
    def classification(self) -> str:
        """The request's single primary class (documented precedence:
        anomalies outrank the eventual body source, type-1 outranks
        type-2, a coalesced wait outranks the hit it ended in)."""
        if self.kind == "file":
            return "file"
        if self.uncacheable:
            return "uncacheable"
        if self.false_hit_retries:
            return "false-hit"
        if self.duplicate:
            return "false-miss-1"
        if self.insert_race:
            return "false-miss-2"
        if self.coalesced_waits:
            return "coalesced"
        if self.remote_hit:
            return "remote-hit"
        if self.local_hit:
            return "local-hit"
        if self.executed:
            if self.ideal in ("local-hit", "remote-hit"):
                return "miss-race"
            return f"miss-{self.miss_reason or 'cold'}"
        return "unfinished"

    @property
    def latency(self) -> float:
        if self.finished is None:
            raise RuntimeError(f"audit for {self.url!r} not finished")
        return self.finished - self.started

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": "request",
            "run": self.run,
            "node": self.node,
            "url": self.url,
            "kind": self.kind,
            "start": self.started,
            "end": self.finished,
            "class": self.classification,
            "outcome": self.outcome,
            "ideal": self.ideal,
        }
        if self.ideal_owner is not None:
            data["ideal_owner"] = self.ideal_owner
        if self.miss_reason is not None:
            data["miss_reason"] = self.miss_reason
        if self.false_hit_retries:
            data["false_hit_retries"] = self.false_hit_retries
        if self.coalesced_waits:
            data["coalesced_waits"] = self.coalesced_waits
        if self.executed:
            data["exec_s"] = self.exec_seconds
        if self.discarded:
            data["discarded"] = True
        if self.wasted_seconds:
            data["wasted_s"] = self.wasted_seconds
        if self.bcast_id is not None:
            data["bcast"] = self.bcast_id
            data["bcast_kind"] = self.bcast_kind
        elif self.bcast_kind is not None:
            # Indicator-caused anomalies carry a cause but no message id.
            data["bcast_kind"] = self.bcast_kind
        if self.staleness is not None:
            data["staleness"] = self.staleness
        if self.inflight_window is not None:
            data["inflight_window"] = self.inflight_window
        return data


class ConsistencyOracle:
    """Shadow global directory + per-request consistency classifier.

    One oracle can audit the several back-to-back simulations an
    experiment command runs: :meth:`new_run` (called by the run
    observer per attached target) resets the shadow state and stamps
    subsequent records with the new run index, exactly like
    :meth:`~repro.obs.TraceCollector.new_run`.
    """

    def __init__(self, max_records: int = 1_000_000):
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.run = 0
        #: Every request audited, in begin order (finished or not).
        self.audits: List[RequestAudit] = []
        #: Broadcast staleness samples: one dict per applied update.
        self.lag_samples: List[Dict[str, Any]] = []
        #: Directory updates lost to injected loss.
        self.drops: List[Dict[str, Any]] = []
        #: Insert broadcasts that revealed an already-counted false miss
        #: on the receiving node (the ``double_cached`` window).
        self.double_cached: List[Dict[str, Any]] = []
        #: Records not stored because the oracle was full.
        self.dropped_records = 0
        #: Finished-request classification counts (live; feeds the
        #: time-series sampler's anomaly-rate series).
        self.counts: Dict[str, int] = {}
        self._bcast_ids = itertools.count(1)
        #: Set (to "digest" / "bloom") when the audited cluster runs a
        #: summary-indicator directory protocol; anomalies without an
        #: attributable broadcast are then stale-indicator casualties.
        self.indicator_protocol: Optional[str] = None
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        # url -> owner -> shadow entry (the ideal, instantly-visible view)
        self._shadow: Dict[str, Dict[str, _ShadowEntry]] = {}
        # urls that were cached at least once (cold-miss detection)
        self._ever: set = set()
        # url -> reason the last live copy disappeared
        self._last_removed: Dict[str, str] = {}
        # (node, url) -> pending directory updates for that replica
        self._pending: Dict[Tuple[str, str], List[_PendingBroadcast]] = {}
        # (node, url) -> last update applied there (type-2 attribution)
        self._applied: Dict[Tuple[str, str], Dict[str, Any]] = {}
        # bcast id -> (kind, owner, url, sent)
        self._bcast_info: Dict[int, Tuple[str, str, str, float]] = {}
        # (node, url) -> (active executions, start of the first)
        self._inflight: Dict[Tuple[str, str], Tuple[int, float]] = {}

    def note_indicator_protocol(self, kind: str) -> None:
        """Called by indicator-mode cachers when the oracle attaches."""
        self.indicator_protocol = kind

    # -- run lifecycle ------------------------------------------------------
    def new_run(self) -> int:
        """Mark the start of another simulation feeding this oracle."""
        self.run += 1
        self._reset_run_state()
        return self.run

    # -- shadow directory maintenance (instant, global) ---------------------
    def shadow_insert(self, node: str, url: str, created: float, ttl: float) -> None:
        """A node's store just gained ``url`` — visible globally *now*."""
        self._shadow.setdefault(url, {})[node] = _ShadowEntry(
            node, created, created + ttl
        )
        self._ever.add(url)

    def shadow_remove(self, node: str, url: str, reason: str, now: float) -> None:
        """A node's store just lost ``url`` (reason: capacity / ttl /
        invalidated / flush)."""
        owners = self._shadow.get(url)
        if owners is not None:
            owners.pop(node, None)
            if not owners:
                del self._shadow[url]
        self._last_removed[url] = reason

    def ideal_lookup(self, node: str, url: str, now: float,
                     cooperative: bool = True):
        """What an instantly-consistent directory would answer: the
        ``(outcome, owner)`` pair where outcome is local-hit / remote-hit
        / miss.  Expired-but-unpurged copies count as dead, mirroring
        :meth:`CacheEntry.expired`.  Stand-alone nodes (``cooperative
        =False``) are unaware of peers, so only their own copy counts."""
        owners = self._shadow.get(url)
        if owners:
            own = owners.get(node)
            if own is not None and own.live(now):
                return "local-hit", node
            if cooperative:
                for owner, entry in owners.items():
                    if owner != node and entry.live(now):
                        return "remote-hit", owner
        return "miss", None

    def _miss_reason(self, url: str, now: float) -> str:
        if url not in self._ever:
            return "cold"
        # The url was cached before.  If a copy still exists but expired,
        # that is a TTL miss regardless of how older copies died.
        owners = self._shadow.get(url)
        if owners and any(not e.live(now) for e in owners.values()):
            return "ttl"
        reason = self._last_removed.get(url, "cold")
        if reason in ("invalidated", "flush"):
            return "invalidated"
        if reason == "ttl":
            return "ttl"
        return "capacity"

    # -- broadcast attribution ---------------------------------------------
    def broadcast_sent(self, owner: str, update: Any, peers, now: float) -> int:
        """Register one directory-update broadcast; stamps ``update`` with
        a ``bcast_id`` the update receivers (and loss injection) report
        back with."""
        url = getattr(update, "url", None)
        if url is None:
            entry = getattr(update, "entry", None)
            url = entry.url if entry is not None else "?"
        kind = "delete" if hasattr(update, "owner") else "insert"
        bcast_id = next(self._bcast_ids)
        update.bcast_id = bcast_id
        self._bcast_info[bcast_id] = (kind, owner, url, now)
        for peer in peers:
            self._pending.setdefault((peer, url), []).append(
                _PendingBroadcast(bcast_id, kind, owner, url, now)
            )
        return bcast_id

    def broadcast_applied(self, node: str, update: Any, msg: Any, now: float) -> None:
        """A peer finished applying ``update`` to its replica.  ``msg`` is
        the carrying :class:`~repro.net.Message` (its ``send_time`` /
        ``deliver_time`` decompose the staleness window into wire time
        and mailbox-plus-apply lag)."""
        bcast_id = getattr(update, "bcast_id", None)
        if bcast_id is None:
            return
        info = self._bcast_info.get(bcast_id)
        if info is None:
            return
        kind, owner, url, sent = info
        key = (node, url)
        pending = self._pending.get(key)
        if pending:
            # The applied update supersedes everything older for this
            # (replica, url): drop it and all earlier pending entries.
            keep = [p for p in pending if p.bcast_id > bcast_id]
            if keep:
                self._pending[key] = keep
            else:
                del self._pending[key]
        self._applied[key] = {
            "bcast": bcast_id, "kind": kind, "owner": owner,
            "sent": sent, "applied": now,
        }
        if len(self.lag_samples) >= self.max_records:
            self.dropped_records += 1
            return
        wire = msg.deliver_time - msg.send_time if msg.deliver_time >= 0 else None
        self.lag_samples.append(
            {
                "type": "bcast-lag",
                "run": self.run,
                "node": node,
                "url": url,
                "kind": kind,
                "owner": owner,
                "bcast": bcast_id,
                "sent": sent,
                "applied": now,
                "lag": now - sent,
                "wire": wire,
            }
        )

    def message_dropped(self, msg: Any) -> None:
        """Loss injection ate a directory update: the replica it was
        heading for stays stale until a later update supersedes it."""
        bcast_id = getattr(msg.payload, "bcast_id", None)
        if bcast_id is None:
            return
        info = self._bcast_info.get(bcast_id)
        if info is None:
            return
        kind, owner, url, sent = info
        for p in self._pending.get((msg.dst, url), ()):
            if p.bcast_id == bcast_id:
                p.dropped = True
        if len(self.drops) >= self.max_records:
            self.dropped_records += 1
            return
        self.drops.append(
            {
                "type": "bcast-drop",
                "run": self.run,
                "node": msg.dst,
                "url": url,
                "kind": kind,
                "owner": owner,
                "bcast": bcast_id,
                "sent": sent,
            }
        )

    def _attribute(self, audit: RequestAudit, url: str, kind: str,
                   owner: Optional[str], now: float) -> None:
        """Tag ``audit`` with the youngest pending broadcast of ``kind``
        for (``audit.node``, ``url``) — the message whose lag caused the
        anomaly."""
        for p in reversed(self._pending.get((audit.node, url), ())):
            if p.kind == kind and (owner is None or p.owner == owner):
                audit.bcast_id = p.bcast_id
                audit.bcast_kind = f"{kind}-dropped" if p.dropped else kind
                audit.staleness = now - p.sent
                return

    # -- request lifecycle ---------------------------------------------------
    def begin(self, node: str, request: Any, now: float) -> RequestAudit:
        """Open the audit record for one accepted request."""
        audit = RequestAudit(
            self.run, node, request.url, request.kind.value, now
        )
        if len(self.audits) >= self.max_records:
            self.dropped_records += 1
        else:
            self.audits.append(audit)
        return audit

    def ideal_check(self, audit: RequestAudit, now: float,
                    cooperative: bool = True) -> None:
        """Snapshot the ideal outcome before the first (real) lookup."""
        outcome, owner = self.ideal_lookup(audit.node, audit.url, now, cooperative)
        audit.ideal = outcome
        audit.ideal_owner = owner
        if outcome == "miss":
            audit.miss_reason = self._miss_reason(audit.url, now)

    def false_hit(self, audit: RequestAudit, url: str, owner: str,
                  wasted: float, now: float) -> None:
        """A remote fetch came back "gone": the owner dropped the entry
        after our (stale) replica said it was there."""
        audit.false_hit_retries += 1
        audit.wasted_seconds += wasted
        if audit.bcast_id is None:
            # The delete broadcast racing our fetch, if it is in flight;
            # with none pending the copy expired before the purger
            # announced it (no message to blame yet).
            self._attribute(audit, url, "delete", owner, now)
        if (
            audit.bcast_id is None
            and audit.bcast_kind is None
            and self.indicator_protocol is not None
        ):
            # No broadcast to blame: the stale/approximate summary
            # indicator itself sent us chasing a phantom copy.
            audit.bcast_kind = "indicator"

    def coalesced(self, audit: RequestAudit) -> None:
        audit.coalesced_waits += 1

    def execution_started(self, audit: RequestAudit, url: str,
                          duplicate: bool, now: float) -> None:
        """The request fell through to CGI execution (the miss side)."""
        audit.executed = True
        key = (audit.node, url)
        count, first = self._inflight.get(key, (0, now))
        self._inflight[key] = (count + 1, first)
        if duplicate:
            audit.duplicate = True
            audit.inflight_window = now - first

    def execution_finished(self, node: str, url: str) -> None:
        key = (node, url)
        count, first = self._inflight.get(key, (1, 0.0))
        if count > 1:
            self._inflight[key] = (count - 1, first)
        else:
            self._inflight.pop(key, None)

    def execution_cost(self, audit: RequestAudit, seconds: float) -> None:
        audit.exec_seconds = seconds

    def insert_raced(self, audit: RequestAudit, url: str, now: float) -> None:
        """At insert time our replica already lists a peer copy: the
        paper's type-2 false miss.  The broadcast that revealed it is the
        one most recently *applied* here during our execution."""
        audit.insert_race = True
        audit.wasted_seconds += audit.exec_seconds
        applied = self._applied.get((audit.node, url))
        if applied is not None and applied["kind"] == "insert":
            audit.bcast_id = applied["bcast"]
            audit.bcast_kind = "insert"
            audit.staleness = applied["applied"] - applied["sent"]
        elif self.indicator_protocol is not None:
            # The peer copy surfaced through a digest/filter refresh,
            # not an attributable broadcast.
            audit.bcast_kind = "indicator"

    def duplicate_cost(self, audit: RequestAudit) -> None:
        """Charge a type-1 false miss's redundant execution as waste."""
        if audit.duplicate:
            audit.wasted_seconds += audit.exec_seconds

    def observe_double_cached(self, node: str, url: str, update: Any,
                              msg: Any, now: float) -> None:
        """An insert broadcast arrived for a url this node also caches:
        the complementary detection window for a false miss that already
        executed here (counted by ``NodeStats.double_cached``)."""
        if len(self.double_cached) >= self.max_records:
            self.dropped_records += 1
            return
        self.double_cached.append(
            {
                "type": "double-cached",
                "run": self.run,
                "node": node,
                "url": url,
                "bcast": getattr(update, "bcast_id", None),
                "staleness": now - msg.send_time,
            }
        )

    def finish(self, audit: RequestAudit, now: float, outcome: str) -> None:
        """Close the audit at response time; the classification is final."""
        audit.finished = now
        audit.outcome = outcome
        if audit.duplicate:
            self.duplicate_cost(audit)
        cls = audit.classification
        self.counts[cls] = self.counts.get(cls, 0) + 1

    # -- export ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Deterministic JSONL: request records in begin order, then the
        broadcast-lag samples, drops, and double-cached events (each in
        occurrence order).  Same seed => byte-identical output."""
        lines = []
        for audit in self.audits:
            lines.append(
                json.dumps(audit.to_dict(), sort_keys=True, separators=(",", ":"))
            )
        for group in (self.lag_samples, self.drops, self.double_cached):
            for record in group:
                lines.append(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: Union[str, Path], meta=None) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_jsonl()
        if meta:
            text = meta_line(meta) + "\n" + text
        write_text(path, text)
        return path

    def __repr__(self) -> str:
        return (
            f"<ConsistencyOracle run={self.run} audits={len(self.audits)} "
            f"lags={len(self.lag_samples)}>"
        )


# ---------------------------------------------------------------------------
# loading + report rendering
# ---------------------------------------------------------------------------

class AuditDump:
    """A loaded audit file, grouped by record type."""

    def __init__(self, requests, lags, drops, double_cached):
        self.requests: List[Dict[str, Any]] = requests
        self.lags: List[Dict[str, Any]] = lags
        self.drops: List[Dict[str, Any]] = drops
        self.double_cached: List[Dict[str, Any]] = double_cached

    def finished(self) -> List[Dict[str, Any]]:
        return [r for r in self.requests if r.get("end") is not None]

    def __len__(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:
        return (
            f"<AuditDump requests={len(self.requests)} lags={len(self.lags)} "
            f"drops={len(self.drops)}>"
        )


def load_audit(path: Union[str, Path]) -> AuditDump:
    """Load a file written by :meth:`ConsistencyOracle.write_jsonl`."""
    requests: List[Dict[str, Any]] = []
    lags: List[Dict[str, Any]] = []
    drops: List[Dict[str, Any]] = []
    double_cached: List[Dict[str, Any]] = []
    sinks = {
        "request": requests,
        "bcast-lag": lags,
        "bcast-drop": drops,
        "double-cached": double_cached,
    }
    for lineno, line in enumerate(read_text(path).splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
        if data.get("type") == "meta":
            continue  # provenance manifest, not audit content
        sink = sinks.get(data.get("type"))
        if sink is None:
            raise ValueError(
                f"{path}:{lineno}: unknown record type {data.get('type')!r}"
            )
        sink.append(data)
    return AuditDump(requests, lags, drops, double_cached)


def _percentile(samples, q: float) -> float:
    if not samples:
        return math.nan
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def render_taxonomy(dump: AuditDump) -> str:
    """The anomaly taxonomy table: one row per classification."""
    finished = dump.finished()
    if not finished:
        return "(no finished requests in the audit)"
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in finished:
        grouped.setdefault(record["class"], []).append(record)
    order = [c for c in AUDIT_CLASSES if c in grouped]
    order += sorted(c for c in grouped if c not in AUDIT_CLASSES)
    total = len(finished)
    rows = []
    for cls in order:
        group = grouped[cls]
        latencies = [r["end"] - r["start"] for r in group]
        wasted = sum(r.get("wasted_s", 0.0) for r in group)
        attributed = sum(1 for r in group if r.get("bcast") is not None)
        rows.append(
            (
                cls,
                len(group),
                f"{100.0 * len(group) / total:.1f}%",
                sum(latencies) / len(latencies),
                _percentile(latencies, 95),
                wasted,
                attributed,
            )
        )
    unfinished = len(dump.requests) - total
    notes = [
        "wasted = failed remote round-trips (false hits) + redundant "
        "executions (false misses)"
    ]
    indicator_caused = sum(
        1 for r in finished if r.get("bcast_kind") == "indicator"
    )
    if indicator_caused:
        notes.append(
            f"{indicator_caused} anomaly(ies) caused by stale/approximate "
            "summary indicators (digest/bloom), not broadcast lag"
        )
    if dump.double_cached:
        notes.append(
            f"{len(dump.double_cached)} double-cached event(s) — false "
            "misses surfacing on the peer that received the insert broadcast"
        )
    if dump.drops:
        notes.append(f"{len(dump.drops)} directory update(s) lost to injected loss")
    if unfinished:
        notes.append(f"{unfinished} request(s) still in flight at simulation end")
    return render_table(
        "Consistency-audit taxonomy (one classification per request)",
        ["class", "requests", "share", "mean rt (s)", "p95 rt (s)",
         "wasted (s)", "attributed"],
        rows,
        note="; ".join(notes),
    )


def render_staleness(dump: AuditDump) -> str:
    """Distribution of directory-replica staleness windows, by update
    kind: how long a broadcast was in flight before it was applied."""
    if not dump.lags:
        return "(no broadcast applications recorded)"
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in dump.lags:
        grouped.setdefault(record["kind"], []).append(record)
    rows = []
    for kind in sorted(grouped):
        lags = [r["lag"] for r in grouped[kind]]
        wires = [r["wire"] for r in grouped[kind] if r.get("wire") is not None]
        rows.append(
            (
                kind,
                len(lags),
                sum(lags) / len(lags),
                _percentile(lags, 50),
                _percentile(lags, 90),
                _percentile(lags, 99),
                max(lags),
                (sum(wires) / len(wires)) if wires else math.nan,
            )
        )
    return render_table(
        "Staleness windows: broadcast send -> replica apply (seconds)",
        ["update", "n", "mean", "p50", "p90", "p99", "max", "mean wire"],
        rows,
        note="lag spans NIC serialization + wire + receiver mailbox wait + "
        "directory write; 'mean wire' is the network share alone",
    )


def render_anomaly_timeline(
    dump: AuditDump, bins: int = 60, run: Optional[int] = None
) -> str:
    """Per-node sparklines: request volume and anomaly counts over time.

    Every run restarts the simulation clock at zero, so runs are charted
    separately; ``run`` limits the output to one of them.
    """
    finished = dump.finished()
    if not finished:
        return "(no finished requests in the audit)"
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    runs = sorted({r.get("run", 0) for r in finished})
    if run is not None:
        if run not in runs:
            return f"(no finished requests for run {run}; have runs {runs})"
        runs = [run]
    blocks = []
    for run_id in runs:
        records = [r for r in finished if r.get("run", 0) == run_id]
        t0 = min(r["start"] for r in records)
        t1 = max(r["end"] for r in records)
        extent = max(t1 - t0, 1e-12)
        lines = [
            f"== Anomaly timeline, run {run_id} ({bins} bins over "
            f"[{t0:.3f}s, {t1:.3f}s]) ==",
        ]
        for node in sorted({r["node"] for r in records}):
            node_records = [r for r in records if r["node"] == node]
            volume = [0] * bins
            anomalies = [0] * bins
            for r in node_records:
                b = min(bins - 1, int((r["end"] - t0) / extent * bins))
                volume[b] += 1
                if r["class"] in ANOMALY_CLASSES:
                    anomalies[b] += 1
            n_anom = sum(anomalies)
            lines.append(f"{node}:")
            lines.append(
                f"  requests  {sparkline(volume)}  ({len(node_records)} total)"
            )
            lines.append(
                f"  anomalies {sparkline(anomalies)}  ({n_anom} total)"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_audit_report(dump: AuditDump, bins: int = 60) -> str:
    """Default ``repro audit`` output: taxonomy + staleness + timelines."""
    finished = dump.finished()
    anomalies = sum(1 for r in finished if r["class"] in ANOMALY_CLASSES)
    head = (
        f"{len(dump.requests)} requests audited ({len(finished)} finished, "
        f"{anomalies} consistency anomalies), {len(dump.lags)} broadcast "
        f"applications, {len(dump.drops)} dropped updates"
    )
    return "\n\n".join(
        [
            head,
            render_taxonomy(dump),
            render_staleness(dump),
            render_anomaly_timeline(dump, bins=bins),
        ]
    )
