"""Observability: request-scoped tracing, metrics registry, analyzers.

The subsystem is strictly additive: nothing here schedules simulation
events, so attaching a tracer or scraping a registry never perturbs a
deterministic run — and with tracing off (the default) the request path
pays only a handful of ``is None`` checks.
"""

from .analyze import (
    RequestRecord,
    outcome_of,
    render_breakdown,
    render_percentiles,
    render_timeline,
    render_trace_report,
    request_records,
)
from .diff import (
    CounterDelta,
    diff_counters,
    flatten_json,
    load_counters,
    render_diff,
)
from .flame import fold_spans, render_folded, write_folded
from .oracle import (
    AUDIT_CLASSES,
    AuditDump,
    ConsistencyOracle,
    RequestAudit,
    load_audit,
    render_anomaly_timeline,
    render_audit_report,
    render_staleness,
    render_taxonomy,
)
from .profiler import (
    ResourceProbe,
    ResourceProfiler,
    little_check,
    load_profile,
    node_of,
    render_bottlenecks,
    render_locks,
    render_profile_report,
    render_resources,
)
from .timeseries import (
    TimeSeriesLog,
    TimeSeriesSampler,
    load_timeseries,
    render_timeseries_dashboard,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_cluster_stats,
    collect_network,
    collect_node_stats,
    observe_tally,
)
from .trace import (
    SPAN_CATEGORIES,
    Span,
    TraceCollector,
    TraceDump,
    finish_span,
    load_jsonl,
    start_child,
)

__all__ = [
    "Span",
    "TraceCollector",
    "TraceDump",
    "load_jsonl",
    "start_child",
    "finish_span",
    "SPAN_CATEGORIES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "collect_node_stats",
    "collect_cluster_stats",
    "collect_network",
    "observe_tally",
    "RequestRecord",
    "request_records",
    "outcome_of",
    "render_breakdown",
    "render_percentiles",
    "render_timeline",
    "render_trace_report",
    "ConsistencyOracle",
    "RequestAudit",
    "AuditDump",
    "AUDIT_CLASSES",
    "load_audit",
    "render_taxonomy",
    "render_staleness",
    "render_anomaly_timeline",
    "render_audit_report",
    "TimeSeriesLog",
    "TimeSeriesSampler",
    "load_timeseries",
    "render_timeseries_dashboard",
    "ResourceProbe",
    "ResourceProfiler",
    "load_profile",
    "little_check",
    "node_of",
    "render_bottlenecks",
    "render_locks",
    "render_resources",
    "render_profile_report",
    "fold_spans",
    "render_folded",
    "write_folded",
    "CounterDelta",
    "load_counters",
    "flatten_json",
    "diff_counters",
    "render_diff",
]
