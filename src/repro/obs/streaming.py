"""Streaming telemetry: windowed rates, quantile sketches, SLO detection.

Every other observability layer here (oracle, profiler, critical path)
is post-hoc: it reports after the run ends.  This module watches the run
*as it happens* the way an operator would — fixed-width sim-time windows
of request rate, hit ratio and per-outcome latency, with the latency
distribution summarised by mergeable online sketches (a P² marker
estimator and a small merging t-digest) instead of stored samples — and
flags the window in which the cluster stops keeping up.

Like the oracle and profiler it is perturbation-free: nothing here
schedules simulation events or draws random numbers.  Windows close
*lazily*, driven by the timestamps of the observations themselves (plus
one :meth:`StreamingTelemetry.finalize` call at run end), so a run with
streaming attached is bit-identical to the same seed without it — unlike
:class:`~repro.obs.timeseries.TimeSeriesSampler`, which schedules
timeout events and therefore changes the event sequence.

The saturation detector flags a closed window when any configured
:class:`SLO` bound is crossed:

* ``p99_latency`` — the window's sketched p99 response time;
* ``max_queue_growth`` — growth of the sampled queue depth (backlog of
  in-flight requests, or a profiler-probe depth when wired) across the
  window;
* ``max_rho`` — Little's-law utilisation ρ = λ·W / c (completions-rate
  times mean residence time over server count): ρ > 1 cannot be
  sustained by any work-conserving system.

Saturation is *declared* after ``consecutive`` flagged windows in a row
— single-window blips (a burst, one slow CGI) do not count.  ``repro
capacity`` bisects arrival rate against this predicate to find the knee.
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union,
)

from ..metrics.ascii import sparkline
from .ioutil import meta_line, read_text, write_text

__all__ = [
    "HIT_OUTCOMES",
    "MISS_OUTCOMES",
    "P2Quantile",
    "TDigest",
    "EwmaRate",
    "SLO",
    "StreamingWindow",
    "StreamingTelemetry",
    "exact_percentile",
    "rank_error",
    "load_streaming",
    "render_streaming_dashboard",
    "collect_streaming",
]

#: Outcomes that count as cache hits / misses for the windowed hit
#: ratio; ``file`` (static documents) is neither — the paper's hit
#: ratios are over dynamic (CGI) requests only.
HIT_OUTCOMES = frozenset({"local-cache", "remote-cache"})
MISS_OUTCOMES = frozenset({"exec"})


def exact_percentile(sorted_data: Sequence[float], p: float) -> float:
    """Linear-interpolated quantile of pre-sorted data, ``p`` in [0, 1].

    Mirrors :meth:`repro.sim.Tally.percentile` (which takes [0, 100]) so
    sketch cross-validation compares against the exact same definition.
    """
    n = len(sorted_data)
    if n == 0:
        return math.nan
    if n == 1:
        return sorted_data[0]
    pos = p * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_data[lo] + frac * (sorted_data[hi] - sorted_data[lo])


def rank_error(samples: Sequence[float], estimate: float, p: float) -> float:
    """How far ``estimate`` sits from rank ``p`` in ``samples``, in rank units.

    The metric is *quantization-aware*: the estimate is first snapped to
    its nearest observed sample value(s), then charged the distance from
    rank ``p`` to that sample's rank interval (ties make a whole
    interval of values "exactly right"; equidistant neighbours take the
    better of the two).  Interpolating estimators — including
    :func:`exact_percentile` itself — legitimately return values that
    fall *between* samples; their realized rank would otherwise jump a
    whole tie-run for an infinitesimal value perturbation.  This is the
    metric the sketch error bounds are stated in: *value* error is
    unbounded on heavy-tailed data, rank error is not.
    """
    n = len(samples)
    if n == 0:
        return math.nan
    data = sorted(samples)
    i = bisect.bisect_left(data, estimate)
    nearest: List[float] = []
    if i < n:
        nearest.append(data[i])
    if i > 0:
        nearest.append(data[i - 1])
    best = min(abs(v - estimate) for v in nearest)
    errors: List[float] = []
    for value in nearest:
        if abs(value - estimate) > best:
            continue
        lo = bisect.bisect_left(data, value) / n
        hi = bisect.bisect_right(data, value) / n
        if lo <= p <= hi:
            errors.append(0.0)
        else:
            errors.append(p - hi if p > hi else lo - p)
    return min(errors, key=abs)


class P2Quantile:
    """One quantile in O(1) memory: the P² algorithm (Jain & Chlamtac).

    Five markers track {min, p/2, p, (1+p)/2, max}; each observation
    nudges the middle markers toward their desired ranks with parabolic
    (falling back to linear) interpolation.  Exact for the first five
    observations and for constant streams; a heuristic after that —
    guaranteed within the observed [min, max], cross-validate against
    :class:`TDigest` or an exact ``Tally`` when it matters.
    """

    __slots__ = ("p", "_count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rates = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        return self._count

    def observe(self, x: float) -> None:
        x = float(x)
        self._count += 1
        h = self._heights
        if self._count <= 5:
            bisect.insort(h, x)
            return
        n = self._positions
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            for i in range(3, -1, -1):
                if x >= h[i]:
                    k = i
                    break
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rates[i]
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                s = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, s)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, int(s))
                n[i] += s

    def _parabolic(self, i: int, s: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + s / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, s: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + s * (h[i + s] - h[i]) / (n[i + s] - n[i])

    def value(self) -> float:
        """The current estimate (NaN when nothing was observed)."""
        if self._count == 0:
            return math.nan
        if self._count <= 5:
            return exact_percentile(self._heights, self.p)
        return self._heights[2]

    def to_state(self) -> Dict[str, Any]:
        """Exact marker state — a :meth:`from_state` round trip estimates
        identically (P² is not mergeable; this is for shipping a sketch
        across a process boundary, not for combining two)."""
        return {
            "p": self.p,
            "count": self._count,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "P2Quantile":
        sketch = P2Quantile(state["p"])
        sketch._count = state["count"]
        sketch._heights = list(state["heights"])
        sketch._positions = list(state["positions"])
        sketch._desired = list(state["desired"])
        return sketch

    def __repr__(self) -> str:
        return f"<P2Quantile p={self.p} n={self._count} est={self.value():.6g}>"


class TDigest:
    """A small merging t-digest (no RNG, deterministic, mergeable).

    Centroids are kept under Dunning's ``k1`` scale function — clusters
    are tiny near the tails and widest at the median — so tail quantiles
    stay sharp in bounded memory.  Incoming values buffer and are merged
    in sorted order; everything is a deterministic function of the
    observation sequence, so same-seed runs sketch identically.

    Documented bound (validated by the property tests): with the default
    ``compression`` the quantile estimate's *rank* error is at most
    ``RANK_ERROR_BOUND`` — value error follows from the local sample
    density, which on heavy tails can be large; compare ranks, not
    values.
    """

    #: Absolute rank-error bound at the default compression, asserted by
    #: the hypothesis property tests on adversarial streams.
    RANK_ERROR_BOUND = 0.05

    __slots__ = ("compression", "_means", "_weights", "_buffer", "_count",
                 "_min", "_max")

    def __init__(self, compression: float = 100.0):
        if compression < 20:
            raise ValueError(f"compression too small: {compression}")
        self.compression = float(compression)
        self._means: List[float] = []
        self._weights: List[float] = []
        self._buffer: List[float] = []
        self._count = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> float:
        return self._count

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    def observe(self, x: float) -> None:
        x = float(x)
        self._buffer.append(x)
        self._count += 1.0
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if len(self._buffer) >= 4 * int(self.compression):
            self._compress()

    def merge(self, other: "TDigest") -> None:
        """Fold ``other`` into this digest (windows stay mergeable)."""
        if other._count == 0.0:
            return
        other._compress()
        self._means.extend(other._means)
        self._weights.extend(other._weights)
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        # Force: extending may have left the centroid list unsorted, and
        # quantile() relies on sorted centroids even below the
        # compression threshold where _compress would normally no-op.
        self._compress(force=True)

    def _k(self, q: float) -> float:
        q = min(1.0, max(0.0, q))
        return self.compression * math.asin(2.0 * q - 1.0) / (2.0 * math.pi)

    def _compress(self, force: bool = False) -> None:
        if not force and not self._buffer \
                and len(self._means) <= int(self.compression):
            return
        points = sorted(
            [(m, w) for m, w in zip(self._means, self._weights)]
            + [(v, 1.0) for v in self._buffer]
        )
        self._buffer = []
        if not points:
            return
        total = sum(w for _, w in points)
        means: List[float] = []
        weights: List[float] = []
        cum = 0.0  # weight fully merged into `means`
        cur_mean, cur_weight = points[0]
        k_lo = self._k(0.0)
        for mean, weight in points[1:]:
            if self._k((cum + cur_weight + weight) / total) - k_lo <= 1.0:
                cur_weight += weight
                cur_mean += (mean - cur_mean) * (weight / cur_weight)
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                cum += cur_weight
                cur_mean, cur_weight = mean, weight
                k_lo = self._k(cum / total)
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means, self._weights = means, weights

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0.0:
            return math.nan
        self._compress()
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        target = q * self._count
        # Centroid i "sits" at the midpoint of its weight span.
        if target <= weights[0] / 2.0:
            span = weights[0] / 2.0
            frac = target / span if span > 0 else 1.0
            return self._min + frac * (means[0] - self._min)
        cum = 0.0
        for i in range(len(means) - 1):
            mid_i = cum + weights[i] / 2.0
            mid_j = cum + weights[i] + weights[i + 1] / 2.0
            if target <= mid_j:
                span = mid_j - mid_i
                frac = (target - mid_i) / span if span > 0 else 0.0
                return means[i] + frac * (means[i + 1] - means[i])
            cum += weights[i]
        mid_last = cum + weights[-1] / 2.0
        span = self._count - mid_last
        frac = (target - mid_last) / span if span > 0 else 1.0
        return means[-1] + min(1.0, frac) * (self._max - means[-1])

    def centroid_count(self) -> int:
        self._compress()
        return len(self._means)

    def to_state(self) -> Dict[str, Any]:
        """Exact centroid state (buffer compressed first), picklable.

        A :meth:`from_state` round trip reproduces the digest bit-for-bit
        — the same centroids a local :meth:`quantile` call would have
        compressed to — so exports from a shipped sketch are
        byte-identical to exports from the original.
        """
        self._compress()
        return {
            "compression": self.compression,
            "means": list(self._means),
            "weights": list(self._weights),
            "count": self._count,
            "min": self._min,
            "max": self._max,
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "TDigest":
        digest = TDigest(state["compression"])
        digest._means = list(state["means"])
        digest._weights = list(state["weights"])
        digest._count = state["count"]
        digest._min = state["min"]
        digest._max = state["max"]
        return digest

    def __repr__(self) -> str:
        return (
            f"<TDigest n={self._count:.0f} centroids={len(self._means)} "
            f"buffered={len(self._buffer)}>"
        )


class EwmaRate:
    """Exponentially weighted moving average with a half-life in sim-time.

    ``update(sample, dt)`` folds one windowed sample in; the decay per
    update is ``0.5 ** (dt / halflife)`` so irregular window widths
    still age uniformly.
    """

    __slots__ = ("halflife", "_value", "_primed")

    def __init__(self, halflife: float):
        if halflife <= 0:
            raise ValueError(f"halflife must be positive, got {halflife}")
        self.halflife = float(halflife)
        self._value = 0.0
        self._primed = False

    @property
    def value(self) -> float:
        return self._value if self._primed else math.nan

    def update(self, sample: float, dt: float) -> float:
        if not self._primed:
            self._value = float(sample)
            self._primed = True
        else:
            alpha = 0.5 ** (dt / self.halflife)
            self._value = alpha * self._value + (1.0 - alpha) * float(sample)
        return self._value


@dataclass(frozen=True)
class SLO:
    """Saturation thresholds; any crossing flags the window.

    Unset bounds (``inf``) never fire.  ``consecutive`` flagged windows
    in a row declare saturation; the first ``warmup_windows`` windows are
    exempt (a cold cache makes every early request look slow).
    """

    p99_latency: float = math.inf
    max_rho: float = math.inf
    max_queue_growth: float = math.inf
    consecutive: int = 3
    warmup_windows: int = 2

    def to_dict(self) -> Dict[str, Any]:
        def _num(x: float) -> Optional[float]:
            return None if math.isinf(x) else x

        return {
            "p99_latency": _num(self.p99_latency),
            "max_rho": _num(self.max_rho),
            "max_queue_growth": _num(self.max_queue_growth),
            "consecutive": self.consecutive,
            "warmup_windows": self.warmup_windows,
        }


def _json_num(x: float) -> Optional[float]:
    """NaN/inf → None (JSON has neither); keeps exports loadable."""
    if x != x or math.isinf(x):
        return None
    return x


class StreamingWindow:
    """One fixed-width window of windowed telemetry.

    Aggregates counts and latency sketches for completions whose finish
    time falls in ``[t0, t1)``; closed exactly once, when a later
    observation (or :meth:`StreamingTelemetry.finalize`) proves the
    window is over.
    """

    __slots__ = (
        "run", "index", "t0", "t1",
        "arrivals", "completions", "errors", "hits", "misses",
        "latency_sum", "latency_min", "latency_max",
        "digest", "p50_sketch", "p99_sketch",
        "by_outcome", "exact",
        "queue_depth", "queue_growth", "rho", "signals", "closed",
    )

    def __init__(self, run: int, index: int, t0: float, t1: float,
                 compression: float = 100.0, keep_exact: bool = False):
        self.run = run
        self.index = index
        self.t0 = t0
        self.t1 = t1
        self.arrivals = 0
        self.completions = 0
        self.errors = 0
        self.hits = 0
        self.misses = 0
        self.latency_sum = 0.0
        self.latency_min = math.inf
        self.latency_max = -math.inf
        self.digest = TDigest(compression)
        self.p50_sketch = P2Quantile(0.5)
        self.p99_sketch = P2Quantile(0.99)
        self.by_outcome: Dict[str, List[float]] = {}
        self.exact: Optional[List[float]] = [] if keep_exact else None
        self.queue_depth = 0.0
        self.queue_growth = 0.0
        self.rho = 0.0
        self.signals: List[str] = []
        self.closed = False

    @property
    def width(self) -> float:
        return self.t1 - self.t0

    @property
    def rate(self) -> float:
        """Completion throughput over the window, req/s."""
        return self.completions / self.width if self.width > 0 else 0.0

    @property
    def arrival_rate(self) -> float:
        return self.arrivals / self.width if self.width > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.completions if self.completions else math.nan

    @property
    def hit_ratio(self) -> float:
        cacheable = self.hits + self.misses
        return self.hits / cacheable if cacheable else math.nan

    @property
    def p50(self) -> float:
        return self.digest.quantile(0.5)

    @property
    def p99(self) -> float:
        return self.digest.quantile(0.99)

    @property
    def saturated(self) -> bool:
        return bool(self.signals)

    def observe(self, outcome: str, latency: float, ok: bool = True) -> None:
        self.completions += 1
        if not ok:
            self.errors += 1
        if outcome in HIT_OUTCOMES:
            self.hits += 1
        elif outcome in MISS_OUTCOMES:
            self.misses += 1
        self.latency_sum += latency
        if latency < self.latency_min:
            self.latency_min = latency
        if latency > self.latency_max:
            self.latency_max = latency
        self.digest.observe(latency)
        self.p50_sketch.observe(latency)
        self.p99_sketch.observe(latency)
        stats = self.by_outcome.get(outcome)
        if stats is None:
            self.by_outcome[outcome] = [1.0, latency]
        else:
            stats[0] += 1.0
            stats[1] += latency
        if self.exact is not None:
            self.exact.append(latency)

    def merge(self, other: "StreamingWindow") -> "StreamingWindow":
        """Combine two windows (associative on counts, sums and sketches).

        Used to coarsen resolution after the fact — e.g. folding 100ms
        windows into 1s windows for a dashboard — without re-running.
        """
        out = StreamingWindow(
            self.run, min(self.index, other.index),
            min(self.t0, other.t0), max(self.t1, other.t1),
            compression=self.digest.compression,
            keep_exact=self.exact is not None and other.exact is not None,
        )
        for src in (self, other):
            out.arrivals += src.arrivals
            out.completions += src.completions
            out.errors += src.errors
            out.hits += src.hits
            out.misses += src.misses
            out.latency_sum += src.latency_sum
            out.latency_min = min(out.latency_min, src.latency_min)
            out.latency_max = max(out.latency_max, src.latency_max)
            out.digest.merge(src.digest)
            for outcome, (count, total) in src.by_outcome.items():
                stats = out.by_outcome.setdefault(outcome, [0.0, 0.0])
                stats[0] += count
                stats[1] += total
            if out.exact is not None:
                out.exact.extend(src.exact or ())
        out.queue_depth = other.queue_depth if other.t1 >= self.t1 else self.queue_depth
        return out

    def to_state(self) -> Dict[str, Any]:
        """Full-fidelity picklable state (unlike :meth:`to_dict`, which
        is the lossy export form): sketches round-trip exactly, so a
        window shipped across a process boundary exports byte-identically
        to the original."""
        return {
            "run": self.run,
            "index": self.index,
            "t0": self.t0,
            "t1": self.t1,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "errors": self.errors,
            "hits": self.hits,
            "misses": self.misses,
            "latency_sum": self.latency_sum,
            "latency_min": self.latency_min,
            "latency_max": self.latency_max,
            "digest": self.digest.to_state(),
            "p50_sketch": self.p50_sketch.to_state(),
            "p99_sketch": self.p99_sketch.to_state(),
            "by_outcome": {k: list(v) for k, v in self.by_outcome.items()},
            "exact": list(self.exact) if self.exact is not None else None,
            "queue_depth": self.queue_depth,
            "queue_growth": self.queue_growth,
            "rho": self.rho,
            "signals": list(self.signals),
            "closed": self.closed,
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "StreamingWindow":
        window = StreamingWindow(
            state["run"], state["index"], state["t0"], state["t1"],
            compression=state["digest"]["compression"],
            keep_exact=state["exact"] is not None,
        )
        for attr in (
            "arrivals", "completions", "errors", "hits", "misses",
            "latency_sum", "latency_min", "latency_max",
            "queue_depth", "queue_growth", "rho", "closed",
        ):
            setattr(window, attr, state[attr])
        window.digest = TDigest.from_state(state["digest"])
        window.p50_sketch = P2Quantile.from_state(state["p50_sketch"])
        window.p99_sketch = P2Quantile.from_state(state["p99_sketch"])
        window.by_outcome = {k: list(v) for k, v in state["by_outcome"].items()}
        window.exact = list(state["exact"]) if state["exact"] is not None else None
        window.signals = list(state["signals"])
        return window

    def to_dict(self) -> Dict[str, Any]:
        has_latency = self.completions > 0
        return {
            "type": "window",
            "run": self.run,
            "index": self.index,
            "t0": self.t0,
            "t1": self.t1,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "errors": self.errors,
            "hits": self.hits,
            "misses": self.misses,
            "rate": self.rate,
            "arrival_rate": self.arrival_rate,
            "hit_ratio": _json_num(self.hit_ratio),
            "latency": {
                "mean": _json_num(self.mean_latency),
                "min": _json_num(self.latency_min) if has_latency else None,
                "max": _json_num(self.latency_max) if has_latency else None,
                "p50": _json_num(self.p50),
                "p99": _json_num(self.p99),
                "p50_p2": _json_num(self.p50_sketch.value()),
                "p99_p2": _json_num(self.p99_sketch.value()),
            },
            "outcomes": {
                outcome: {"count": count, "mean": total / count if count else None}
                for outcome, (count, total) in sorted(self.by_outcome.items())
            },
            "queue_depth": self.queue_depth,
            "queue_growth": self.queue_growth,
            "rho": _json_num(self.rho),
            "saturated": self.saturated,
            "signals": list(self.signals),
        }

    def __repr__(self) -> str:
        return (
            f"<StreamingWindow run={self.run} [{self.t0:g},{self.t1:g}) "
            f"n={self.completions} p99={self.p99:.4g} "
            f"signals={self.signals}>"
        )


class StreamingTelemetry:
    """Windowed run telemetry with an SLO-driven saturation detector.

    Attach with ``cluster.attach_streaming(telemetry)`` (or through
    :class:`~repro.experiments.common.RunObserver`); servers feed each
    completed request into :meth:`record` and open-loop sources feed
    arrivals into :meth:`note_arrival`.  Both are pure bookkeeping —
    the window containing an observation closes when a *later*
    observation arrives, never via a scheduled event, so the simulated
    run is bit-identical with telemetry on or off.

    Call :meth:`finalize` after ``sim.run()`` to close the last window.
    """

    #: Cap on how many empty windows a time gap materialises; larger
    #: jumps skip ahead (the skip is counted in ``gap_windows_skipped``).
    MAX_GAP_WINDOWS = 1000

    def __init__(
        self,
        window: float = 1.0,
        slo: Optional[SLO] = None,
        compression: float = 100.0,
        keep_exact: bool = False,
        max_windows: int = 200_000,
        ewma_halflife: Optional[float] = None,
    ):
        if window <= 0:
            raise ValueError(f"window width must be positive, got {window}")
        self.window = float(window)
        self.slo = slo or SLO()
        self.compression = float(compression)
        self.keep_exact = keep_exact
        self.max_windows = max_windows
        self.windows: List[StreamingWindow] = []
        self.run = 0
        self.n_servers = 1
        #: Optional queue-depth sampler (e.g. max profiler-probe depth),
        #: read once per window close; defaults to the arrival/completion
        #: backlog this object tracks itself.
        self.queue_probe: Optional[Callable[[], float]] = None
        self.rate_ewma = EwmaRate(ewma_halflife or 3.0 * self.window)
        self.latency_ewma = EwmaRate(ewma_halflife or 3.0 * self.window)
        self.dropped = 0
        self.gap_windows_skipped = 0
        self._current: Optional[StreamingWindow] = None
        self._arrivals = 0
        self._completions = 0
        self._streak = 0
        self._saturated_window: Optional[int] = None
        self._last_depth = 0.0
        self._last_t = 0.0

    # -- run lifecycle -----------------------------------------------------
    def new_run(self) -> None:
        """Close out the current run and start stamping the next one."""
        if self._current is not None:
            self._close(self._current)
            self._current = None
        self.run += 1
        self.reset_saturation()
        self._arrivals = 0
        self._completions = 0
        self._last_depth = 0.0
        self._last_t = 0.0

    def reset_saturation(self) -> None:
        """Forget the flagged-window streak (used between ramp steps)."""
        self._streak = 0
        self._saturated_window = None

    # -- feed points (called from inside the simulation; pure bookkeeping) -
    def note_arrival(self, t: float) -> None:
        """An open-loop source injected a request at sim-time ``t``."""
        self._advance_to(t)
        self._arrivals += 1
        if self._current is not None:
            self._current.arrivals += 1

    def record(self, t: float, node: str, outcome: str, latency: float,
               ok: bool = True) -> None:
        """A server finished a request at ``t`` with the given outcome."""
        self._advance_to(t)
        self._completions += 1
        window = self._current
        if window is not None:
            window.observe(outcome, latency, ok)

    def advance(self, t: float) -> None:
        """Close every window that ends at or before ``t``.

        For controllers (the capacity ramp) that must read the detector
        at a point in time even when no observation has crossed the
        window boundary yet.  Pure bookkeeping, like the feed points.
        """
        self._advance_to(t)

    def finalize(self) -> None:
        """Close the in-flight window (call once, after ``sim.run()``)."""
        if self._current is not None:
            self._close(self._current)
            self._current = None

    # -- windowing ---------------------------------------------------------
    def _open(self, index: int) -> StreamingWindow:
        w = self.window
        return StreamingWindow(
            self.run, index, index * w, (index + 1) * w,
            compression=self.compression, keep_exact=self.keep_exact,
        )

    def _advance_to(self, t: float) -> None:
        self._last_t = t
        current = self._current
        if current is None:
            self._current = self._open(int(t // self.window))
            return
        if t < current.t1:
            return
        target = int(t // self.window)
        while current.index < target:
            self._close(current)
            nxt = current.index + 1
            if target - nxt > self.MAX_GAP_WINDOWS:
                self.gap_windows_skipped += target - nxt
                nxt = target
            current = self._open(nxt)
        self._current = current

    def _close(self, window: StreamingWindow) -> None:
        if window.closed:
            return
        window.closed = True
        if self.queue_probe is not None:
            depth = float(self.queue_probe())
        else:
            depth = float(self._arrivals - self._completions)
        window.queue_depth = depth
        window.queue_growth = depth - self._last_depth
        self._last_depth = depth
        lam = window.rate
        mean = window.mean_latency
        servers = max(1, self.n_servers)
        window.rho = (lam * mean / servers) if window.completions else 0.0
        self.rate_ewma.update(lam, window.width)
        if window.completions:
            self.latency_ewma.update(mean, window.width)
        slo = self.slo
        signals = window.signals
        if window.completions and window.p99 > slo.p99_latency:
            signals.append("p99")
        if window.rho > slo.max_rho:
            signals.append("rho")
        if window.queue_growth > slo.max_queue_growth:
            signals.append("queue")
        if signals and window.index >= slo.warmup_windows:
            self._streak += 1
            if self._streak >= slo.consecutive and self._saturated_window is None:
                self._saturated_window = window.index
        else:
            self._streak = 0
        if len(self.windows) < self.max_windows:
            self.windows.append(window)
        else:
            self.dropped += 1

    # -- detector state ----------------------------------------------------
    @property
    def saturated(self) -> bool:
        """True once ``slo.consecutive`` windows in a row were flagged."""
        return self._saturated_window is not None

    @property
    def saturated_window(self) -> Optional[int]:
        """Index of the window that completed the flagged streak."""
        return self._saturated_window

    @property
    def backlog(self) -> int:
        """Requests injected but not yet completed (this run)."""
        return self._arrivals - self._completions

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable state for merging elsewhere.

        Call :meth:`finalize` first so the in-flight window is included.
        """
        return {
            "windows": [w.to_state() for w in self.windows],
            "run": self.run,
            "dropped": self.dropped,
            "gap_windows_skipped": self.gap_windows_skipped,
        }

    def merge_snapshot(
        self, snap: Dict[str, Any], run_base: Optional[int] = None
    ) -> None:
        """Concatenate another telemetry's :meth:`snapshot` runs onto
        this one's — the ``--jobs`` case, where each worker cell is a
        later run of the same sweep.  Windows round-trip exactly, so the
        merged export is byte-identical to the serial sweep's."""
        if run_base is None:
            run_base = self.run
        for state in snap["windows"]:
            window = StreamingWindow.from_state(state)
            window.run += run_base
            if len(self.windows) < self.max_windows:
                self.windows.append(window)
            else:
                self.dropped += 1
        self.dropped += snap["dropped"]
        self.gap_windows_skipped += snap["gap_windows_skipped"]
        self.run = max(self.run, run_base + snap["run"])

    def merge_shard_snapshots(
        self,
        snaps: Sequence[Dict[str, Any]],
        run_base: Optional[int] = None,
        n_servers: Optional[int] = None,
    ) -> None:
        """Fold per-shard snapshots of ONE partitioned simulation.

        Same-index windows from different shards are merged with
        :meth:`StreamingWindow.merge` (counts, sums and digests are
        associative), except queue depth, which is *summed* — each shard
        tracks its own arrival/completion backlog, and backlogs add.
        Queue growth, ρ (against the full-cluster ``n_servers``, not a
        shard's share) and SLO signals are then recomputed in window
        order, replaying the same streak logic a serial close sequence
        runs.  Counts are exact; merged digest quantiles (and hence a
        ``p99_latency`` SLO) are sketch-path-dependent and may differ
        slightly from the serial sketch.
        """
        if run_base is None:
            run_base = self.run
        if n_servers is not None:
            self.n_servers = n_servers
        by_key: Dict[Tuple[int, int], StreamingWindow] = {}
        max_run = 0
        for snap in snaps:
            max_run = max(max_run, snap["run"])
            self.dropped += snap["dropped"]
            self.gap_windows_skipped += snap["gap_windows_skipped"]
            for state in snap["windows"]:
                window = StreamingWindow.from_state(state)
                key = (window.run, window.index)
                cur = by_key.get(key)
                if cur is None:
                    by_key[key] = window
                else:
                    depth = cur.queue_depth + window.queue_depth
                    merged = cur.merge(window)
                    merged.run = cur.run
                    merged.queue_depth = depth
                    merged.closed = True
                    by_key[key] = merged
        # Second pass, in window order: growth, rho, signals, streaks.
        self.reset_saturation()
        servers = max(1, self.n_servers)
        last_run: Optional[int] = None
        last_depth = 0.0
        for key in sorted(by_key):
            window = by_key[key]
            if window.run != last_run:
                last_run = window.run
                last_depth = 0.0
                self._streak = 0
            window.queue_growth = window.queue_depth - last_depth
            last_depth = window.queue_depth
            lam = window.rate
            window.rho = (
                lam * window.mean_latency / servers if window.completions else 0.0
            )
            self.rate_ewma.update(lam, window.width)
            if window.completions:
                self.latency_ewma.update(window.mean_latency, window.width)
            slo = self.slo
            window.signals = []
            if window.completions and window.p99 > slo.p99_latency:
                window.signals.append("p99")
            if window.rho > slo.max_rho:
                window.signals.append("rho")
            if window.queue_growth > slo.max_queue_growth:
                window.signals.append("queue")
            if window.signals and window.index >= slo.warmup_windows:
                self._streak += 1
                if self._streak >= slo.consecutive \
                        and self._saturated_window is None:
                    self._saturated_window = window.index
            else:
                self._streak = 0
            window.run += run_base
            if len(self.windows) < self.max_windows:
                self.windows.append(window)
            else:
                self.dropped += 1
        self.run = max(self.run, run_base + max_run)

    # -- summaries and export ----------------------------------------------
    def summary_digest(self, run: Optional[int] = None) -> TDigest:
        """All window digests merged — the mergeable-sketch payoff."""
        out = TDigest(self.compression)
        for window in self.windows:
            if run is None or window.run == run:
                out.merge(window.digest)
        return out

    def to_dicts(self, tag: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        records = []
        for window in self.windows:
            record = window.to_dict()
            if tag:
                record.update(tag)
            records.append(record)
        return records

    def to_jsonl(self, tag: Optional[Dict[str, Any]] = None) -> str:
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.to_dicts(tag)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path, tag: Optional[Dict[str, Any]] = None,
                    meta: Optional[Dict[str, Any]] = None) -> None:
        text = self.to_jsonl(tag)
        if meta:
            text = meta_line(meta) + "\n" + text
        write_text(path, text)

    def __repr__(self) -> str:
        return (
            f"<StreamingTelemetry window={self.window:g} "
            f"windows={len(self.windows)} saturated={self.saturated}>"
        )


def load_streaming(path) -> List[Dict[str, Any]]:
    """Window records from a streaming JSONL export (gzip-transparent)."""
    records = []
    for line in read_text(path).splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "window":
            records.append(record)
    return records


def collect_streaming(registry, telemetry: StreamingTelemetry,
                      prefix: str = "swala_streaming") -> None:
    """Publish run-level streaming totals into a metrics registry."""
    windows = registry.counter(
        f"{prefix}_windows_total", "Closed telemetry windows.",
        labelnames=("run",))
    flagged = registry.counter(
        f"{prefix}_saturated_windows_total",
        "Windows flagged by the saturation detector.", labelnames=("run",))
    completions = registry.counter(
        f"{prefix}_completions_total", "Requests observed by streaming.",
        labelnames=("run",))
    last_p99 = registry.gauge(
        f"{prefix}_last_p99_seconds",
        "Sketched p99 latency of the newest closed window.",
        labelnames=("run",))
    last_rho = registry.gauge(
        f"{prefix}_last_rho",
        "Little's-law utilisation of the newest closed window.",
        labelnames=("run",))
    for window in telemetry.windows:
        labels = {"run": str(window.run)}
        windows.labels(**labels).inc()
        if window.saturated:
            flagged.labels(**labels).inc()
        completions.labels(**labels).inc(window.completions)
    if telemetry.windows:
        newest = telemetry.windows[-1]
        labels = {"run": str(newest.run)}
        p99 = newest.p99
        if p99 == p99:
            last_p99.labels(**labels).set(p99)
        last_rho.labels(**labels).set(newest.rho)


# -- dashboard -------------------------------------------------------------
def _downsample(values: List[float], limit: int) -> List[float]:
    if len(values) <= limit:
        return values
    stride = (len(values) + limit - 1) // limit
    return [
        max(values[i:i + stride]) for i in range(0, len(values), stride)
    ]


def _window_field(record: Union[Dict[str, Any], StreamingWindow], name: str):
    if isinstance(record, StreamingWindow):
        if name == "p99":
            return record.p99
        if name == "hit_ratio":
            return record.hit_ratio
        if name == "saturated":
            return record.saturated
        return getattr(record, name)
    if name == "p99":
        value = record.get("latency", {}).get("p99")
        return math.nan if value is None else value
    value = record.get(name)
    if value is None and name in ("hit_ratio", "rho"):
        return math.nan
    return value


def render_streaming_dashboard(
    windows: Sequence[Union[Dict[str, Any], StreamingWindow]],
    max_width: int = 64,
    title: str = "streaming telemetry",
) -> str:
    """ASCII window dashboard: one sparkline row per windowed signal.

    Accepts live :class:`StreamingWindow` objects or loaded JSONL
    records; a ``!`` under a column marks a saturation-flagged window.
    """
    windows = list(windows)
    if not windows:
        return f"{title}: no closed windows"
    rows = [
        ("rate req/s", "rate"),
        ("p99 latency", "p99"),
        ("hit ratio", "hit_ratio"),
        ("queue depth", "queue_depth"),
        ("rho", "rho"),
    ]
    flags = [bool(_window_field(w, "saturated")) for w in windows]
    label_w = max(len(label) for label, _ in rows)
    t0 = _window_field(windows[0], "t0")
    t1 = _window_field(windows[-1], "t1")
    lines = [
        f"{title}: {len(windows)} windows, t=[{t0:g}, {t1:g})s, "
        f"{sum(flags)} flagged"
    ]
    for label, field in rows:
        raw = []
        for w in windows:
            value = _window_field(w, field)
            value = 0.0 if value is None or value != value else float(value)
            raw.append(value)
        sampled = _downsample(raw, max_width)
        peak = max(raw) if raw else 0.0
        lines.append(
            f"  {label.ljust(label_w)}  {sparkline(sampled, lo=0.0)}"
            f"  max={peak:.4g}"
        )
    flag_sampled = [
        1.0 if any(chunk) else 0.0
        for chunk in _chunks(flags, len(_downsample([float(f) for f in flags], max_width)))
    ]
    marks = "".join("!" if f else "." for f in flag_sampled)
    lines.append(f"  {'saturated'.ljust(label_w)}  {marks}")
    return "\n".join(lines)


def _chunks(values: Sequence, n_chunks: int) -> Iterable[Sequence]:
    if n_chunks <= 0:
        return []
    stride = (len(values) + n_chunks - 1) // n_chunks
    return [values[i:i + stride] for i in range(0, len(values), stride)]
