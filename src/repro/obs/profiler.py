"""Per-resource profiling: utilization, occupancy, waits, bottlenecks.

The tracer (PR 1) answers *where a request's time goes* and the oracle
(PR 4) *whether the caches agreed*; this module answers the remaining
question of the paper's §4 evaluation — *which hardware model is the
bottleneck*.  A :class:`ResourceProfiler` instruments the simulation
primitives (:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Store`,
:class:`~repro.sim.resources.ProcessorSharing`, plus synthetic probes
for thread pools) with a :class:`ResourceProbe` each, accumulating:

* time-weighted **busy/queue integrals** and **occupancy histograms**
  (seconds spent at each exact in-service / queue level);
* **wait** and **hold** time tallies per acquisition;
* **provenance** — which process acquired the resource, keyed by the
  process name with trailing sequence digits stripped (``swala0.rt3``
  counts under ``swala0.rt``; grants from timeout callbacks, like the
  network's no-contention fast path, count under ``(callback)``);
* throughput counters (requests / contended / completions / cancelled).

Zero-cost-when-off discipline, same as the tracer and oracle: every
primitive carries ``probe = None`` and the hot paths pay one ``is None``
check.  Probes never schedule events, draw no random numbers, and the
:meth:`ProcessorSharing.utilization` scrape is pure, so profiled runs
are bit-identical to unprofiled ones and same-seed profiles are
byte-identical.

**Interval recording** (``record_intervals=True``) additionally links
each acquisition to the request span that caused it: the instrumented
span helpers maintain a :class:`~repro.sim.probes.SpanLinker`, probes
capture the innermost open span at *submit* time (grants and
completions fire in other processes' contexts, where the ambient span
would be wrong), and each completed acquisition appends one
``{trace, span, resource, kind, wait, service, start, end}`` record.
This is the join key the critical-path analyzer
(:mod:`repro.obs.critical`) uses to split span time into service vs
queueing blame.  Off by default: probes carry ``sink = None`` and pay
one extra ``is None`` check per hook, and the exported JSON gains the
``intervals`` key only when recording was on, so committed profile
baselines are unaffected.

The report side computes, per resource, the Little's-law cross-check
``L = λ·W`` against the measured time-average occupancy — a built-in
sanity proof that the accounting is self-consistent — and per node the
top saturated resource with an idle/busy/contended breakdown
(``repro profile``).
"""

from __future__ import annotations

import json
import math
import re
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..metrics.reporting import render_table
from ..sim.monitor import Tally

from .ioutil import read_text, write_text

__all__ = [
    "ResourceProbe",
    "ResourceProfiler",
    "load_profile",
    "node_of",
    "little_check",
    "render_bottlenecks",
    "render_resources",
    "render_locks",
    "render_profile_report",
]

#: Bump when the JSON layout changes incompatibly.
PROFILE_VERSION = 1

_TRAILING_DIGITS = re.compile(r"-?\d+$")


def _provenance_label(raw: str) -> str:
    """Collapse per-instance process names to their family.

    ``swala0.rt3`` → ``swala0.rt``; ``xmit-121`` → ``xmit``; the empty
    label (acquisitions from event callbacks, which run with no active
    process) becomes ``(callback)``.
    """
    label = _TRAILING_DIGITS.sub("", raw)
    return label or "(callback)"


class ResourceProbe:
    """Accumulated statistics for one instrumented resource.

    ``kind`` is one of ``resource`` (FCFS :class:`Resource`), ``store``
    (FIFO :class:`Store` — ``in_service`` counts buffered items and
    ``queued`` counts blocked getters), ``cpu``
    (:class:`ProcessorSharing` — ``in_service`` counts jobs in system),
    or ``pool`` (synthetic thread-pool probe driven by
    ``busy_begin``/``busy_end``).
    """

    __slots__ = (
        "sim", "name", "kind", "capacity", "run", "owner",
        "t0", "horizon", "_last",
        "in_service", "queued",
        "busy_time", "queue_time",
        "busy_occupancy", "queue_occupancy",
        "waits", "holds",
        "requests", "contended", "completions", "cancelled",
        "provenance", "_pending", "_held", "_item_times",
        "cpu_busy_time", "sink", "_links",
    )

    def __init__(self, sim, name: str, kind: str, capacity: int,
                 run: int = 0, owner=None):
        self.sim = sim
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self.run = run
        self.owner = owner
        self.t0 = sim.now
        self.horizon: Optional[float] = None
        self._last = sim.now
        self.in_service = 0
        self.queued = 0
        self.busy_time = 0.0
        self.queue_time = 0.0
        self.busy_occupancy: Dict[int, float] = {}
        self.queue_occupancy: Dict[int, float] = {}
        self.waits = Tally(f"{name}.wait", keep_samples=False)
        self.holds = Tally(f"{name}.hold", keep_samples=False)
        self.requests = 0
        self.contended = 0
        self.completions = 0
        self.cancelled = 0
        self.provenance: Dict[str, int] = {}
        self._pending: Dict[int, float] = {}
        self._held: Dict[int, float] = {}
        self._item_times: Deque[float] = deque()
        #: For ``cpu`` probes: the owner's true busy integral, scraped at
        #: finalize (≠ ``busy_time``, which integrates jobs *in system*).
        self.cpu_busy_time: Optional[float] = None
        #: The owning :class:`ResourceProfiler` when interval recording is
        #: on, else ``None`` (hooks pay one extra ``is None`` check).
        self.sink = None
        #: Submit-time span links, keyed by ``id(token/job/getter)``:
        #: ``(span, submit_time, grant_time_or_None)``.
        self._links: Dict[int, Any] = {}

    # -- time accounting --------------------------------------------------
    def _advance(self) -> float:
        now = self.sim.now
        dt = now - self._last
        if dt > 0.0:
            ins, q = self.in_service, self.queued
            self.busy_time += ins * dt
            self.queue_time += q * dt
            occ = self.busy_occupancy
            occ[ins] = occ.get(ins, 0.0) + dt
            occ = self.queue_occupancy
            occ[q] = occ.get(q, 0.0) + dt
            self._last = now
        return now

    def _mark(self) -> None:
        label = _provenance_label(self.sim.current_label())
        prov = self.provenance
        prov[label] = prov.get(label, 0) + 1

    def _link_submit(self, key: int, now: float, granted: bool) -> None:
        """Capture the ambient span at submit time (interval mode only)."""
        span = self.sink.linker.current(self.sim)
        if span is not None:
            self._links[key] = (span, now, now if granted else None)

    # -- Resource hooks ---------------------------------------------------
    def acquire(self, token) -> None:
        """An uncontended grant (request or try_acquire)."""
        now = self._advance()
        self.requests += 1
        self._mark()
        self.waits.observe(0.0)
        self.in_service += 1
        self._held[id(token)] = now
        if self.sink is not None:
            self._link_submit(id(token), now, granted=True)

    def enqueue(self, token) -> None:
        """A request that found every unit busy."""
        now = self._advance()
        self.requests += 1
        self.contended += 1
        self._mark()
        self.queued += 1
        self._pending[id(token)] = now
        if self.sink is not None:
            self._link_submit(id(token), now, granted=False)

    def grant(self, token) -> None:
        """A queued request promoted to holder by a release."""
        now = self._advance()
        self.waits.observe(now - self._pending.pop(id(token), now))
        self.queued -= 1
        self.in_service += 1
        self._held[id(token)] = now
        if self.sink is not None:
            # Runs in the releaser's context: only stamp the grant time,
            # never consult the linker here.
            link = self._links.get(id(token))
            if link is not None:
                self._links[id(token)] = (link[0], link[1], now)

    def release(self, token) -> None:
        now = self._advance()
        self.holds.observe(now - self._held.pop(id(token), now))
        self.in_service -= 1
        self.completions += 1
        if self.sink is not None:
            link = self._links.pop(id(token), None)
            if link is not None:
                span, submitted, granted = link
                if granted is None:
                    granted = now
                self.sink.record_interval(
                    self, span, granted - submitted, now - granted,
                    submitted, now,
                )

    def cancel(self, token) -> None:
        """A queued request withdrawn before it was granted."""
        self._advance()
        self._pending.pop(id(token), None)
        self.queued -= 1
        self.cancelled += 1
        if self.sink is not None:
            self._links.pop(id(token), None)

    # -- Store hooks ------------------------------------------------------
    def deposit(self) -> None:
        """A put buffered because no getter was waiting."""
        now = self._advance()
        self.requests += 1
        self._mark()
        self.in_service += 1
        self._item_times.append(now)

    def take(self) -> None:
        """A buffered item consumed (get or try_get)."""
        now = self._advance()
        self.in_service -= 1
        self.completions += 1
        residence = now - (self._item_times.popleft() if self._item_times else now)
        self.waits.observe(0.0)
        self.holds.observe(residence)

    def wake(self, getter) -> None:
        """A put handed straight to a blocked getter."""
        now = self._advance()
        self.requests += 1
        self._mark()
        self.waits.observe(now - self._pending.pop(id(getter), now))
        self.queued -= 1
        self.holds.observe(0.0)
        self.completions += 1
        if self.sink is not None:
            # Fires in the putter's context; the link was captured when
            # the getter blocked.  Pure wait, no service.
            link = self._links.pop(id(getter), None)
            if link is not None:
                span, submitted, _ = link
                self.sink.record_interval(
                    self, span, now - submitted, 0.0, submitted, now
                )

    def enqueue_getter(self, event) -> None:
        """A get that found the store empty and blocked."""
        now = self._advance()
        self.queued += 1
        self._pending[id(event)] = now
        if self.sink is not None:
            self._link_submit(id(event), now, granted=False)

    def cancel_getter(self, event) -> None:
        """A blocked getter withdrawn (timeout raced the item)."""
        self._advance()
        self._pending.pop(id(event), None)
        self.queued -= 1
        self.cancelled += 1
        if self.sink is not None:
            self._links.pop(id(event), None)

    # -- ProcessorSharing hooks -------------------------------------------
    def ps_submit(self, job) -> None:
        self._advance()
        self.requests += 1
        self._mark()
        if self.in_service >= self.capacity:
            self.contended += 1
        self.in_service += 1
        if self.sink is not None:
            span = self.sink.linker.current(self.sim)
            if span is not None:
                self._links[id(job)] = span

    def ps_complete(self, job, now: float) -> None:
        self._advance()
        sojourn = now - job.start_time
        # Clamped: an uncontended job's sojourn can land a float ulp
        # below its demand, and a negative "queueing excess" is noise.
        self.waits.observe(max(0.0, sojourn - job.demand))
        self.holds.observe(sojourn)
        self.completions += 1
        self.in_service -= 1
        if self.sink is not None:
            # Fires inside _advance of whatever process moved the clock;
            # the job's span was captured at submit.  wait + service ==
            # sojourn exactly, so per-span blame sums stay exact.
            span = self._links.pop(id(job), None)
            if span is not None:
                wait = max(0.0, sojourn - job.demand)
                self.sink.record_interval(
                    self, span, wait, sojourn - wait, job.start_time, now
                )

    # -- pool hooks -------------------------------------------------------
    def busy_begin(self) -> float:
        """A pool worker leaves idle; returns the start stamp."""
        now = self._advance()
        self.requests += 1
        self._mark()
        self.in_service += 1
        return now

    def busy_end(self, started: float) -> None:
        now = self._advance()
        self.holds.observe(now - started)
        self.in_service -= 1
        self.completions += 1

    # -- finalize / export ------------------------------------------------
    def finalize(self, at: Optional[float] = None) -> None:
        """Flush the occupancy integrals and freeze the horizon.

        Idempotent; safe to call after the simulation stopped.  ``at``
        overrides the horizon: a PDES shard's simulator overshoots the
        global terminal instant by up to one conservative window (see
        :mod:`repro.sim.pdes`), so shard probes finalize at the
        coordinator's terminal time instead of their own ``sim.now`` —
        the integrals then cover exactly the window a serial probe would
        have observed.  ``at`` never rewinds below the last accounted
        event (the occupancy integrals must keep summing to the observed
        window).
        """
        self._advance()
        horizon = self.sim.now if at is None else max(at, self._last)
        dt = horizon - self._last
        if dt > 0.0:
            ins, q = self.in_service, self.queued
            self.busy_time += ins * dt
            self.queue_time += q * dt
            occ = self.busy_occupancy
            occ[ins] = occ.get(ins, 0.0) + dt
            occ = self.queue_occupancy
            occ[q] = occ.get(q, 0.0) + dt
            self._last = horizon
        self.horizon = horizon
        if self.kind == "cpu" and self.owner is not None:
            self.cpu_busy_time = self.owner.projected_busy_time()

    @property
    def elapsed(self) -> float:
        horizon = self.horizon if self.horizon is not None else self.sim.now
        return max(0.0, horizon - self.t0)

    def utilization(self) -> Optional[float]:
        """Fraction of capacity in use over the observed window.

        ``None`` for stores (no capacity to saturate).  For CPUs this is
        the owner's true busy integral over ``ncpus``; for resources and
        pools the in-service integral over ``capacity``.
        """
        elapsed = self.elapsed
        if elapsed <= 0 or self.kind == "store":
            return None
        if self.kind == "cpu":
            busy = self.cpu_busy_time
            if busy is None and self.owner is not None:
                busy = self.owner.projected_busy_time()
            if busy is None:
                return None
            return busy / (elapsed * self.capacity)
        return self.busy_time / (elapsed * self.capacity)

    def to_dict(self) -> Dict[str, Any]:
        elapsed = self.elapsed
        out: Dict[str, Any] = {
            "run": self.run,
            "name": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "start": self.t0,
            "end": self.horizon if self.horizon is not None else self.sim.now,
            "requests": self.requests,
            "contended": self.contended,
            "completions": self.completions,
            "cancelled": self.cancelled,
            "busy_time": self.busy_time,
            "queue_time": self.queue_time,
            "utilization": self.utilization(),
            "mean_load": self.busy_time / elapsed if elapsed > 0 else None,
            "mean_queue": self.queue_time / elapsed if elapsed > 0 else None,
            "busy_occupancy": {
                str(level): secs
                for level, secs in sorted(self.busy_occupancy.items())
            },
            "queue_occupancy": {
                str(level): secs
                for level, secs in sorted(self.queue_occupancy.items())
            },
            "wait": self.waits.to_dict(),
            "hold": self.holds.to_dict(),
            "provenance": dict(sorted(self.provenance.items())),
        }
        if self.kind == "cpu":
            out["cpu_busy_time"] = self.cpu_busy_time
        return out

    def __repr__(self) -> str:
        return (
            f"<ResourceProbe {self.name!r} kind={self.kind} run={self.run} "
            f"in_service={self.in_service} queued={self.queued}>"
        )


class ResourceProfiler:
    """Owns every probe of an observed run (or sweep of runs).

    Attached through the same ``attach_profiler`` chain the tracer and
    oracle use: the cluster fans out to the network, machines, servers
    and cachers, each of which calls :meth:`instrument` on the resources
    it owns (and :meth:`watch_locks` for directory RWLocks, which keep
    their own counters — the profiler only scrapes them at finalize).
    """

    def __init__(self, max_resources: int = 4096,
                 record_intervals: bool = False,
                 max_intervals: int = 500_000):
        if max_resources < 1:
            raise ValueError(f"max_resources must be >= 1, got {max_resources}")
        if max_intervals < 1:
            raise ValueError(f"max_intervals must be >= 1, got {max_intervals}")
        self.max_resources = max_resources
        self.max_intervals = max_intervals
        self.probes: List[ResourceProbe] = []
        #: ``(run, node, lock)`` triples registered via :meth:`watch_locks`.
        self.watched_locks: List[Tuple[int, str, Any]] = []
        self._watched_ids: set = set()
        self.run = 0
        #: Probes not created because ``max_resources`` was hit.
        self.dropped = 0
        #: Per-process open-span stacks, maintained by the instrumented
        #: span helpers; ``None`` unless ``record_intervals`` was asked
        #: for, which is what keeps the default path zero-cost.
        self.linker = None
        #: Completed span-linked acquisitions, in completion order
        #: (deterministic: event order is deterministic).
        self.intervals: List[Dict[str, Any]] = []
        #: Interval records not stored because ``max_intervals`` was hit.
        self.intervals_dropped = 0
        #: Frozen resource/lock/interval records folded in from other
        #: profilers' snapshots (shard or pool workers); exported
        #: alongside this profiler's own live probes.
        self._merged_resources: List[Dict[str, Any]] = []
        self._merged_locks: List[Dict[str, Any]] = []
        self._merged_intervals: List[Dict[str, Any]] = []
        if record_intervals:
            from ..sim.probes import SpanLinker

            self.linker = SpanLinker()

    def new_run(self) -> int:
        """Stamp subsequent probes with the next run number."""
        self.run += 1
        return self.run

    # -- attachment -------------------------------------------------------
    def instrument(self, obj) -> Optional[ResourceProbe]:
        """Attach a probe to a ``Resource``/``Store``/``ProcessorSharing``.

        Idempotent: an already-probed object keeps its probe.  Returns
        ``None`` (and counts ``dropped``) past ``max_resources``.
        """
        probe = getattr(obj, "probe", None)
        if probe is not None:
            return probe
        from ..sim.resources import ProcessorSharing, Resource, Store
        if isinstance(obj, ProcessorSharing):
            kind, capacity = "cpu", obj.ncpus
        elif isinstance(obj, Resource):
            kind, capacity = "resource", obj.capacity
        elif isinstance(obj, Store):
            kind, capacity = "store", 0
        else:
            raise TypeError(f"cannot instrument {type(obj).__name__}")
        probe = self._new_probe(obj.sim, obj.name, kind, capacity, owner=obj)
        if probe is not None:
            obj.probe = probe
        return probe

    def make_probe(self, sim, name: str, kind: str,
                   capacity: int = 1) -> Optional[ResourceProbe]:
        """A standalone probe (thread pools and other synthetic resources)."""
        return self._new_probe(sim, name, kind, capacity)

    def _new_probe(self, sim, name, kind, capacity, owner=None):
        if len(self.probes) >= self.max_resources:
            self.dropped += 1
            return None
        probe = ResourceProbe(sim, name, kind, capacity, run=self.run, owner=owner)
        if self.linker is not None:
            probe.sink = self
        self.probes.append(probe)
        return probe

    def record_interval(self, probe: ResourceProbe, span,
                        wait: float, service: float,
                        start: float, end: float) -> None:
        """One completed span-linked acquisition (interval mode only)."""
        if len(self.intervals) >= self.max_intervals:
            self.intervals_dropped += 1
            return
        self.intervals.append({
            "trace": span.trace_id,
            "span": span.span_id,
            "resource": probe.name,
            "kind": probe.kind,
            "run": probe.run,
            "wait": wait,
            "service": service,
            "start": start,
            "end": end,
        })

    def watch_locks(self, node: str, locks: Sequence[Any]) -> None:
        """Register RWLocks/Locks whose own counters we scrape at export."""
        for lock in locks:
            key = (self.run, id(lock))
            if key in self._watched_ids:
                continue
            self._watched_ids.add(key)
            self.watched_locks.append((self.run, node, lock))

    # -- lifecycle --------------------------------------------------------
    def finalize(self, at: Optional[float] = None) -> None:
        """Flush every probe's integrals; call once per finished run.

        ``at`` pins every probe's horizon (shard profilers pass the
        coordinator's global terminal time; see
        :meth:`ResourceProbe.finalize`)."""
        for probe in self.probes:
            probe.finalize(at)

    # -- snapshot / merge -------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable frozen state, for merging elsewhere.

        Call :meth:`finalize` first: probes are exported as plain dicts,
        and the live lock objects are scraped here — nothing in the
        snapshot references a simulator.
        """
        return {
            "run": self.run,
            "dropped": self.dropped,
            "resources": [probe.to_dict() for probe in self.probes],
            "locks": self._lock_stats(),
            "intervals": list(self.intervals),
            "intervals_dropped": self.intervals_dropped,
        }

    def merge_snapshot(
        self,
        snap: Dict[str, Any],
        run_base: Optional[int] = None,
        trace_offset: int = 0,
        span_offset: int = 0,
    ) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        ``run_base`` maps snapshot run ``r`` to ``run_base + r`` (same
        convention as :meth:`TraceCollector.merge_snapshot`: default
        concatenates runs, shard merges pass one fixed base).
        ``trace_offset``/``span_offset`` must be the id offsets the
        tracer merge applied to the same shard's spans, so interval
        records keep joining to their spans in the critical-path
        analyzer.
        """
        if run_base is None:
            run_base = self.run
        for entry in snap["resources"]:
            entry = dict(entry)
            entry["run"] += run_base
            self._merged_resources.append(entry)
        for row in snap["locks"]:
            row = dict(row)
            row["run"] += run_base
            self._merged_locks.append(row)
        for record in snap["intervals"]:
            record = dict(record)
            record["run"] += run_base
            record["trace"] += trace_offset
            record["span"] += span_offset
            if len(self._merged_intervals) + len(self.intervals) \
                    >= self.max_intervals:
                self.intervals_dropped += 1
            else:
                self._merged_intervals.append(record)
        self.dropped += snap["dropped"]
        self.intervals_dropped += snap["intervals_dropped"]
        self.run = max(self.run, run_base + snap["run"])

    # -- export -----------------------------------------------------------
    def _lock_stats(self) -> List[Dict[str, Any]]:
        rows = []
        for run, node, lock in self.watched_locks:
            row: Dict[str, Any] = {
                "run": run,
                "node": node,
                "name": lock.name or type(lock).__name__,
                "contended": lock.contended_acquisitions,
                "wait_time": lock.wait_time,
            }
            if hasattr(lock, "read_acquisitions"):
                row["read_acquisitions"] = lock.read_acquisitions
                row["write_acquisitions"] = lock.write_acquisitions
            else:
                row["acquisitions"] = lock.acquisitions
            rows.append(row)
        rows.sort(key=lambda r: (r["run"], r["node"], r["name"]))
        return rows

    def resource_count(self) -> int:
        """Exported resource entries: live probes plus merged-in records
        (a parallel run's resources arrive via shard/worker snapshots and
        never appear in ``probes``)."""
        return len(self.probes) + len(self._merged_resources)

    def all_intervals(self) -> List[Dict[str, Any]]:
        """Merged-in plus live interval records, in export order.

        Serial appends intervals in completion order, which is
        non-decreasing in run; a stable sort by run restores exactly
        that order when merged and live runs interleave.
        """
        intervals = self._merged_intervals + list(self.intervals)
        intervals.sort(key=lambda r: r["run"])
        return intervals

    def to_dict(self) -> Dict[str, Any]:
        resources = [probe.to_dict() for probe in self.probes] \
            + self._merged_resources
        resources.sort(key=lambda e: (e["run"], e["kind"], e["name"]))
        locks = self._lock_stats() + self._merged_locks
        locks.sort(key=lambda r: (r["run"], r["node"], r["name"]))
        out = {
            "version": PROFILE_VERSION,
            "runs": self.run,
            "dropped": self.dropped,
            "resources": resources,
            "locks": locks,
        }
        if self.linker is not None:
            # Only in interval mode, so profiles written without it (and
            # the committed CI baselines diffed against them) are
            # byte-for-byte what they always were.
            out["intervals"] = self.all_intervals()
            out["intervals_dropped"] = self.intervals_dropped
        return out

    def to_json(self, meta=None) -> str:
        """Deterministic JSON (sorted keys, compact separators)."""
        data = self.to_dict()
        if meta:
            data["meta"] = dict(meta)
        return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"

    def write_json(self, path: Union[str, Path], meta=None) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_text(path, self.to_json(meta))
        return path

    def __repr__(self) -> str:
        return (
            f"<ResourceProfiler probes={len(self.probes)} "
            f"locks={len(self.watched_locks)} runs={self.run}>"
        )


# -- loading + reporting -----------------------------------------------------

def load_profile(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a file written by :meth:`ResourceProfiler.write_json`."""
    data = json.loads(read_text(path))
    if not isinstance(data, dict) or "resources" not in data:
        raise ValueError(f"{path}: not a profiler export (no 'resources' key)")
    return data


def node_of(name: str) -> str:
    """Owner node of a resource name: ``swala0.cpu`` / ``client1:80`` →
    ``swala0`` / ``client1``."""
    return name.split(".")[0].split(":")[0]


def little_check(entry: Dict[str, Any]) -> Dict[str, float]:
    """Little's-law cross-check for one exported resource entry.

    Returns ``lambda`` (completions per second), ``W`` (mean time in
    system per completion), ``L`` (their product) and ``L_measured``
    (the time-averaged number in system from the occupancy integrals) —
    for a probe observed over its whole life these must agree up to
    end-effects from requests still in flight at the horizon.
    """
    elapsed = entry["end"] - entry["start"]
    if elapsed <= 0:
        return {"lambda": 0.0, "W": 0.0, "L": 0.0, "L_measured": 0.0,
                "delta": 0.0}
    lam = entry["completions"] / elapsed
    wait = entry["wait"].get("mean") or 0.0
    hold = entry["hold"].get("mean") or 0.0
    if entry["kind"] == "cpu":
        # For PS, the hold tally *is* the sojourn (time in system); wait
        # is the queueing excess over pure demand and must not be added
        # on top.
        w = hold
    else:
        w = wait + hold
    l_measured = (entry["busy_time"] + entry["queue_time"]) / elapsed
    l = lam * w
    return {
        "lambda": lam,
        "W": w,
        "L": l,
        "L_measured": l_measured,
        "delta": abs(l - l_measured),
    }


def _breakdown(entry: Dict[str, Any]) -> Tuple[float, float, float]:
    """(idle%, busy%, contended%) of the observed window."""
    elapsed = entry["end"] - entry["start"]
    if elapsed <= 0:
        return (0.0, 0.0, 0.0)
    idle = entry["busy_occupancy"].get("0", 0.0) / elapsed
    contended = sum(
        secs for level, secs in entry["queue_occupancy"].items()
        if int(level) > 0
    ) / elapsed
    return (100.0 * idle, 100.0 * (1.0 - idle), 100.0 * contended)


def _entries(profile: Dict[str, Any], run: Optional[int] = None,
             node: Optional[str] = None) -> List[Dict[str, Any]]:
    entries = profile["resources"]
    runs = sorted({e["run"] for e in entries})
    if run is None and runs:
        run = runs[-1]
    out = [e for e in entries if e["run"] == run]
    if node is not None:
        out = [e for e in out if node_of(e["name"]) == node]
    return out


def _saturation(entry: Dict[str, Any]) -> float:
    """Sort key for "most saturated".

    Capacity-bound kinds rank by utilization.  Stores rank by their
    *backlog* (time-averaged buffered items, ``mean_load``) — blocked
    getters are idle consumers waiting for work, and counting them would
    crown every idle mailbox with a thread pool parked on it.
    """
    util = entry.get("utilization")
    if util is not None:
        return util
    if entry["kind"] == "store":
        return entry.get("mean_load") or 0.0
    return entry.get("mean_queue") or 0.0


def render_bottlenecks(profile: Dict[str, Any],
                       run: Optional[int] = None) -> str:
    """Per-node bottleneck table: the top saturated resource of each node."""
    entries = _entries(profile, run)
    if not entries:
        return "(no profiled resources)"
    by_node: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        by_node.setdefault(node_of(entry["name"]), []).append(entry)
    rows = []
    for node in sorted(by_node):
        top = max(by_node[node], key=_saturation)
        util = top.get("utilization")
        idle, busy, contended = _breakdown(top)
        lit = little_check(top)
        rows.append((
            node,
            top["name"],
            top["kind"],
            100.0 * util if util is not None else math.nan,
            busy,
            contended,
            lit["lambda"],
            lit["W"],
            lit["L"],
            lit["L_measured"],
        ))
    return render_table(
        "Per-node bottlenecks (top saturated resource)",
        ["node", "resource", "kind", "util %", "busy %", "contended %",
         "λ (1/s)", "W (s)", "ρ=λ·W", "L measured"],
        rows,
        note="ρ=λ·W is the Little's-law prediction; L measured is the "
        "time-averaged jobs-in-system from the occupancy integrals",
    )


def render_resources(profile: Dict[str, Any], run: Optional[int] = None,
                     node: Optional[str] = None,
                     top: Optional[int] = None) -> str:
    """Profiled resources of one run, most saturated first (``top`` caps
    the row count; the omitted tail is noted)."""
    entries = _entries(profile, run, node)
    if not entries:
        return "(no profiled resources)"
    entries = sorted(entries, key=lambda e: (-_saturation(e), e["name"]))
    omitted = 0
    if top is not None and len(entries) > top:
        omitted = len(entries) - top
        entries = entries[:top]
    rows = []
    for entry in entries:
        util = entry.get("utilization")
        wait = entry["wait"].get("mean")
        hold = entry["hold"].get("mean")
        rows.append((
            entry["name"],
            entry["kind"],
            entry["capacity"],
            entry["requests"],
            entry["contended"],
            100.0 * util if util is not None else math.nan,
            entry.get("mean_queue") if entry.get("mean_queue") is not None
            else math.nan,
            wait if wait is not None else math.nan,
            hold if hold is not None else math.nan,
        ))
    return render_table(
        f"Resources (run {entries[0]['run']})",
        ["resource", "kind", "cap", "requests", "contended", "util %",
         "mean queue", "wait mean (s)", "hold mean (s)"],
        rows,
        note=f"{omitted} quieter resource(s) omitted" if omitted else None,
    )


def render_locks(profile: Dict[str, Any], run: Optional[int] = None) -> str:
    """Directory lock contention table (empty string when none watched)."""
    locks = profile.get("locks") or []
    runs = sorted({l["run"] for l in locks})
    if run is None and runs:
        run = runs[-1]
    locks = [l for l in locks if l["run"] == run]
    if not locks:
        return ""
    rows = [
        (
            lock["node"],
            lock["name"],
            lock.get("read_acquisitions",
                     lock.get("acquisitions", 0)),
            lock.get("write_acquisitions", 0),
            lock["contended"],
            lock["wait_time"],
        )
        for lock in locks
    ]
    return render_table(
        "Directory lock contention",
        ["node", "lock", "reads", "writes", "contended", "wait total (s)"],
        rows,
    )


def render_profile_report(profile: Dict[str, Any],
                          run: Optional[int] = None,
                          node: Optional[str] = None,
                          top: Optional[int] = None) -> str:
    """Default ``repro profile`` output: bottlenecks + full resource table."""
    entries = profile.get("resources", [])
    runs = sorted({e["run"] for e in entries})
    header = (
        f"{len(entries)} probed resources across "
        f"{len(runs)} run(s); showing run "
        f"{run if run is not None else (runs[-1] if runs else '-')}"
    )
    if profile.get("dropped"):
        header += f" (warning: {profile['dropped']} probes dropped at cap)"
    parts = [header, "", render_bottlenecks(profile, run), "",
             render_resources(profile, run, node, top)]
    locks = render_locks(profile, run)
    if locks:
        parts += ["", locks]
    return "\n".join(parts)
