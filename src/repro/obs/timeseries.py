"""Simulation-time telemetry: fixed-Δt snapshots of selected series.

The metrics registry (PR 1) answers *how much* — end-of-run totals —
but not *when*: a burst of false hits right after a node flush looks
identical to the same count spread over the whole run.  The
:class:`TimeSeriesSampler` closes that gap.  It is a simulation **daemon
process** that wakes every ``interval`` simulated seconds and snapshots
a set of named series — by default every node's key ``NodeStats``
counters (named exactly like their registry metrics, e.g.
``swala_false_hits_total{node=swala0}``), the cache-occupancy gauge, and
the consistency oracle's per-class counts when one is attached.

Samples accumulate in a :class:`TimeSeriesLog` (bounded, run-stamped,
deterministic JSONL — same seed, byte-identical file) and render as
per-series sparkline dashboards via :func:`render_timeseries_dashboard`.

Scheduling note: the sampler *does* add timeout events to the
simulation, but they carry no side effects and draw no random numbers,
so the simulated behaviour of every other process is unchanged.  Sampled
runs no longer force serial execution: each ``--jobs`` worker and each
PDES shard keeps its own :class:`TimeSeriesLog` and ships a snapshot
back for a deterministic merge (:meth:`TimeSeriesLog.merge_snapshot`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..metrics.ascii import sparkline

from .ioutil import meta_line, read_text, write_text

__all__ = [
    "TimeSeriesLog",
    "TimeSeriesSampler",
    "node_stats_series",
    "cluster_series",
    "oracle_series",
    "load_timeseries",
    "render_timeseries_dashboard",
]

#: (series base name, NodeStats attribute) pairs sampled per node by
#: default — the counters the consistency story revolves around, named
#: like their ``obs.registry`` metrics.
NODE_SERIES = (
    ("swala_requests_total", "requests"),
    ("swala_local_hits_total", "local_hits"),
    ("swala_remote_hits_total", "remote_hits"),
    ("swala_cache_misses_total", "misses"),
    ("swala_false_hits_total", "false_hits"),
    ("swala_false_misses_total", "false_misses"),
    ("swala_coalesced_total", "coalesced"),
    ("swala_directory_updates_total", "updates_applied"),
    ("swala_cache_evictions_total", "evictions"),
)


class TimeSeriesLog:
    """Bounded, run-stamped accumulator of ``{t, series}`` samples."""

    def __init__(self, max_samples: int = 500_000):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self.samples: List[Dict[str, Any]] = []
        #: Samples not stored because the log was full.
        self.dropped = 0
        #: Bumped by :meth:`new_run`, stamped on every sample.
        self.run = 0

    def new_run(self) -> int:
        """Mark the start of another simulation feeding this log."""
        self.run += 1
        return self.run

    def record(self, t: float, series: Dict[str, float]) -> None:
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append({"run": self.run, "t": t, "series": dict(series)})

    def runs(self) -> List[int]:
        return sorted({s["run"] for s in self.samples})

    # -- snapshot / merge -------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable state of this log, for merging elsewhere."""
        return {
            "samples": [dict(s) for s in self.samples],
            "dropped": self.dropped,
            "run": self.run,
        }

    def merge_snapshot(
        self,
        snap: Dict[str, Any],
        run_base: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> None:
        """Fold another log's :meth:`snapshot` into this one.

        ``run_base`` maps snapshot run ``r`` to ``run_base + r`` (default:
        this log's current ``run``, i.e. sequential concatenation — the
        ``--jobs`` case).  Shard merges of one partitioned run pass the
        same fixed ``run_base`` for every shard; samples taken by
        different shards at the same ``(run, t)`` are unioned into one
        record, and ``horizon`` drops shard samples taken past the global
        terminal time (shard simulators may overshoot it by up to one
        conservative window — see :mod:`repro.sim.pdes`).
        """
        if run_base is None:
            run_base = self.run
        index: Dict[Tuple[int, float], Dict[str, Any]] = {}
        if horizon is not None:
            # Shard merge: union same-instant samples across shards.
            index = {(s["run"], s["t"]): s for s in self.samples}
        for sample in snap["samples"]:
            run = sample["run"] + run_base
            t = sample["t"]
            if horizon is not None and t > horizon:
                continue
            existing = index.get((run, t))
            if existing is not None:
                existing["series"].update(sample["series"])
                continue
            if len(self.samples) >= self.max_samples:
                self.dropped += 1
                continue
            merged = {"run": run, "t": t, "series": dict(sample["series"])}
            self.samples.append(merged)
            if horizon is not None:
                index[(run, t)] = merged
        self.dropped += snap["dropped"]
        self.run = max(self.run, run_base + snap["run"])
        if horizon is not None:
            self.samples.sort(key=lambda s: (s["run"], s["t"]))

    def __len__(self) -> int:
        return len(self.samples)

    # -- export -----------------------------------------------------------
    def to_jsonl(self) -> str:
        """Deterministic JSONL, one sample per line in record order."""
        lines = [
            json.dumps(sample, sort_keys=True, separators=(",", ":"))
            for sample in self.samples
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: Union[str, Path], meta=None) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_jsonl()
        if meta:
            text = meta_line(meta) + "\n" + text
        write_text(path, text)
        return path

    def __repr__(self) -> str:
        return f"<TimeSeriesLog samples={len(self.samples)} run={self.run}>"


# -- sample sources ----------------------------------------------------------

def node_stats_series(server) -> Dict[str, float]:
    """One Swala server's sampled series (counters + occupancy gauge)."""
    stats = server.stats
    node = stats.node or server.name
    out = {
        f"{name}{{node={node}}}": float(getattr(stats, attr, 0))
        for name, attr in NODE_SERIES
    }
    cacher = getattr(server, "cacher", None)
    if cacher is not None:
        out[f"swala_cached_entries{{node={node}}}"] = float(len(cacher.store))
    return out


def cluster_series(cluster) -> Callable[[], Dict[str, float]]:
    """Source closure sampling every node of a ``SwalaCluster``."""
    def sample() -> Dict[str, float]:
        out: Dict[str, float] = {}
        for server in cluster.servers:
            out.update(node_stats_series(server))
        return out
    return sample


def oracle_series(oracle) -> Callable[[], Dict[str, float]]:
    """Source closure sampling a ``ConsistencyOracle``'s live counts."""
    def sample() -> Dict[str, float]:
        return {
            f"oracle_{cls}_total": float(count)
            for cls, count in oracle.counts.items()
        }
    return sample


class TimeSeriesSampler:
    """The sampling daemon: snapshot all sources every ``interval``."""

    def __init__(self, sim, log: TimeSeriesLog, interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.sim = sim
        self.log = log
        self.interval = interval
        self._sources: List[Tuple[str, Callable[[], Dict[str, float]]]] = []

    def add_source(self, name: str, fn: Callable[[], Dict[str, float]]) -> None:
        self._sources.append((name, fn))

    def sample(self) -> None:
        """Take one snapshot now (also called by the daemon each Δt)."""
        series: Dict[str, float] = {}
        for _, fn in self._sources:
            series.update(fn())
        self.log.record(self.sim.now, series)

    def start(self) -> None:
        """Spawn the daemon; it runs until the simulation stops."""
        self.sim.process(self._run(), name="obs.sampler")

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval)
            self.sample()


# -- loading + rendering -----------------------------------------------------

def load_timeseries(path: Union[str, Path]) -> TimeSeriesLog:
    """Load a file written by :meth:`TimeSeriesLog.write_jsonl`."""
    log = TimeSeriesLog()
    for lineno, line in enumerate(read_text(path).splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
        if data.get("type") == "meta":
            continue  # provenance manifest, not a sample
        log.samples.append(data)
        log.run = max(log.run, data.get("run", 0))
    return log


def render_timeseries_dashboard(
    log: TimeSeriesLog,
    run: Optional[int] = None,
    series: Optional[Sequence[str]] = None,
    width: int = 60,
) -> str:
    """Sparkline dashboard, one row per series.

    Cumulative counters (names ending ``_total``) are differenced to
    per-interval rates; gauges are drawn raw.  ``run=None`` picks the
    last run in the log; ``series`` filters by substring match.
    """
    if not log.samples:
        return "(no samples)"
    runs = log.runs()
    if run is None:
        run = runs[-1]
    samples = [s for s in log.samples if s["run"] == run]
    if not samples:
        return f"(no samples for run {run}; have runs {runs})"
    names = sorted({name for s in samples for name in s["series"]})
    if series:
        names = [
            n for n in names if any(want in n for want in series)
        ]
        if not names:
            return "(no series match the filter)"
    t0, t1 = samples[0]["t"], samples[-1]["t"]
    lines = [
        f"== Time series (run {run}, {len(samples)} samples over "
        f"[{t0:.3f}s, {t1:.3f}s], Δ-rates for *_total) =="
    ]
    label_w = max(len(n) for n in names)
    for name in names:
        values = [float(s["series"].get(name, 0.0)) for s in samples]
        if name.split("{", 1)[0].endswith("_total"):
            shown = [b - a for a, b in zip(values, values[1:])] or values
            summary = f"last={values[-1]:g} peakΔ={max(shown):g}"
        else:
            shown = values
            summary = f"min={min(shown):g} max={max(shown):g} last={shown[-1]:g}"
        if len(shown) > width:
            # Downsample by max within equal chunks so bursts stay visible.
            chunk = len(shown) / width
            shown = [
                max(shown[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
                for i in range(width)
            ]
        lines.append(f"{name.ljust(label_w)}  {sparkline(shown)}  {summary}")
    return "\n".join(lines)
