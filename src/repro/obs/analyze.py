"""Latency-breakdown analysis of span traces.

Given a JSONL trace emitted by :class:`~repro.obs.TraceCollector`, this
module reconstructs per-request critical paths and answers the questions
the paper's evaluation revolves around: *where does the time go* on the
CGI path (queueing vs CPU vs network vs disk), and how do the latency
distributions differ per cache outcome (local hit / remote hit / false
hit / miss)?

Three renderers:

* :func:`render_breakdown` — per-outcome time-share table;
* :func:`render_percentiles` — per-outcome latency percentile table;
* :func:`render_timeline` — an ASCII span timeline (Gantt) for one trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.reporting import render_table
from .trace import SPAN_CATEGORIES, Span, TraceDump

__all__ = [
    "RequestRecord",
    "request_records",
    "outcome_of",
    "render_breakdown",
    "render_percentiles",
    "render_timeline",
    "render_trace_report",
]

#: Order outcomes are reported in (anything else appends alphabetically).
_OUTCOME_ORDER = (
    "local-hit", "remote-hit", "false-hit", "miss", "coalesced",
    "uncacheable", "file",
)


@dataclass
class RequestRecord:
    """One request's reconstructed latency anatomy."""

    trace_id: int
    url: str
    kind: str
    node: str
    outcome: str
    start: float
    total: float
    #: Seconds attributed to each category by the direct children of the
    #: root span; ``other`` is the uncovered remainder.
    shares: Dict[str, float] = field(default_factory=dict)
    retries: int = 0

    def share(self, category: str) -> float:
        return self.shares.get(category, 0.0)


def outcome_of(root: Span) -> str:
    """Map a closed root span to the paper's outcome taxonomy.

    The retry annotations take precedence over the final body source: a
    false hit usually *ends* as an execution (and a coalesced wait as a
    local hit), but what distinguishes the request is the detour.
    """
    source = root.attrs.get("outcome")
    if root.attrs.get("false_hit_retries"):
        return "false-hit"
    if root.attrs.get("coalesced"):
        return "coalesced"
    if source == "local-cache":
        return "local-hit"
    if source == "remote-cache":
        return "remote-hit"
    if source == "exec":
        if root.attrs.get("uncacheable"):
            return "uncacheable"
        return "miss"
    return source or "unknown"


def request_records(dump: TraceDump) -> List[RequestRecord]:
    """Reconstruct one :class:`RequestRecord` per complete request trace.

    Traces whose root span never closed (the simulation ended mid-request)
    are skipped — partial anatomies would skew every aggregate.
    """
    records: List[RequestRecord] = []
    for trace_id, spans in sorted(dump.traces().items()):
        root = next((s for s in spans if s.parent_id is None), None)
        if root is None or root.end is None:
            continue
        shares = {category: 0.0 for category in SPAN_CATEGORIES}
        covered = 0.0
        for span in spans:
            if span.parent_id != root.span_id or span.end is None:
                continue
            category = span.category if span.category in shares else "other"
            shares[category] += span.duration
            covered += span.duration
        total = root.duration
        # Time under the root not covered by any direct child: scheduling
        # gaps between phases.  Attributed to "other".
        shares["other"] += max(0.0, total - covered)
        records.append(
            RequestRecord(
                trace_id=trace_id,
                url=str(root.attrs.get("url", "")),
                kind=str(root.attrs.get("kind", "")),
                node=root.node,
                outcome=outcome_of(root),
                start=root.start,
                total=total,
                shares=shares,
                retries=int(root.attrs.get("false_hit_retries", 0)),
            )
        )
    return records


def _by_outcome(records: Sequence[RequestRecord]) -> List[Tuple[str, List[RequestRecord]]]:
    grouped: Dict[str, List[RequestRecord]] = {}
    for record in records:
        grouped.setdefault(record.outcome, []).append(record)
    known = [o for o in _OUTCOME_ORDER if o in grouped]
    extra = sorted(o for o in grouped if o not in _OUTCOME_ORDER)
    return [(o, grouped[o]) for o in known + extra]


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return math.nan
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def render_breakdown(records: Sequence[RequestRecord]) -> str:
    """Per-outcome critical-path shares: queueing vs CPU vs network vs disk."""
    if not records:
        return "(no complete request traces)"
    rows = []
    for outcome, group in _by_outcome(records):
        n = len(group)
        total = sum(r.total for r in group)
        mean = total / n
        row = [outcome, n, mean]
        for category in SPAN_CATEGORIES:
            cat_total = sum(r.share(category) for r in group)
            row.append(100.0 * cat_total / total if total else 0.0)
        rows.append(tuple(row))
    return render_table(
        "Latency breakdown by cache outcome (% of total time)",
        ["outcome", "requests", "mean (s)", "queue %", "cpu %", "network %",
         "disk %", "other %"],
        rows,
        note="queue = request wire time + listen-mailbox wait + dispatch; "
        "other = scheduling gaps not covered by any child span",
    )


def render_percentiles(records: Sequence[RequestRecord]) -> str:
    """Per-outcome response-time percentile table."""
    if not records:
        return "(no complete request traces)"
    rows = []
    for outcome, group in _by_outcome(records):
        samples = [r.total for r in group]
        rows.append(
            (
                outcome,
                len(samples),
                sum(samples) / len(samples),
                _percentile(samples, 50),
                _percentile(samples, 90),
                _percentile(samples, 95),
                _percentile(samples, 99),
                max(samples),
            )
        )
    return render_table(
        "Response-time percentiles by cache outcome (seconds)",
        ["outcome", "n", "mean", "p50", "p90", "p95", "p99", "max"],
        rows,
    )


def _span_depth(span: Span, by_id: Dict[int, Span]) -> int:
    depth = 0
    current = span
    while current.parent_id is not None:
        parent = by_id.get(current.parent_id)
        if parent is None:
            break
        depth += 1
        current = parent
    return depth


def render_timeline(
    dump: TraceDump, trace_id: Optional[int] = None, width: int = 48
) -> str:
    """ASCII Gantt chart of every span in one trace.

    ``trace_id=None`` picks the first complete trace in the file.
    """
    traces = dump.traces()
    if not traces:
        return "(empty trace file)"
    if trace_id is None:
        for tid, spans in sorted(traces.items()):
            root = next((s for s in spans if s.parent_id is None), None)
            if root is not None and root.end is not None:
                trace_id = tid
                break
        if trace_id is None:
            return "(no complete trace to draw)"
    if trace_id not in traces:
        raise KeyError(
            f"trace {trace_id} not in file (have {sorted(traces)[:10]}...)"
        )
    spans = traces[trace_id]
    by_id = {s.span_id: s for s in spans}
    root = next((s for s in spans if s.parent_id is None), None)
    if root is None:
        return f"(trace {trace_id} has no root span)"
    closed_ends = [s.end for s in spans if s.end is not None]
    if not closed_ends:
        # A truncated trace can leave every span open; there is nothing
        # to scale the chart by, so say so instead of raising.
        return f"(trace {trace_id}: all {len(spans)} spans unclosed — truncated trace?)"
    t0 = min(s.start for s in spans)
    t1 = max(closed_ends)
    extent = max(t1 - t0, 1e-12)

    total = f"{root.duration * 1e3:.3f}ms" if root.end is not None else "open"
    header = (
        f"trace {trace_id}  url={root.attrs.get('url', '?')}  "
        f"outcome={outcome_of(root)}  node={root.node}  "
        f"total={total}"
    )
    name_w = max(
        (len("  " * _span_depth(s, by_id) + s.name) for s in spans), default=4
    )
    lines = [header, ""]
    lines.append(
        f"{'span'.ljust(name_w)}  {'cat'.ljust(7)}  {'ms'.rjust(9)}  timeline"
    )
    from ..metrics.ascii import block_char

    block = block_char()
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        label = "  " * _span_depth(span, by_id) + span.name
        if span.end is None:
            lines.append(
                f"{label.ljust(name_w)}  {span.category.ljust(7)}  "
                f"{'open'.rjust(9)}  (never closed)"
            )
            continue
        lead = int(round((span.start - t0) / extent * width))
        length = max(1, int(round(span.duration / extent * width)))
        length = min(length, width - min(lead, width - 1))
        bar = " " * min(lead, width - 1) + block * length
        lines.append(
            f"{label.ljust(name_w)}  {span.category.ljust(7)}  "
            f"{span.duration * 1e3:9.3f}  |{bar.ljust(width)}|"
        )
    return "\n".join(lines)


def render_trace_report(dump: TraceDump) -> str:
    """Default ``repro trace`` output: summary + breakdown + percentiles."""
    records = request_records(dump)
    n_open = sum(
        1
        for spans in dump.traces().values()
        for s in spans
        if s.parent_id is None and s.end is None
    )
    n_unclosed = sum(1 for s in dump.spans if s.end is None)
    summary = (
        f"{len(dump.spans)} spans in {len(dump.traces())} traces "
        f"({len(records)} complete requests, {n_open} unfinished), "
        f"{len(dump.events)} engine events"
    )
    lines = [summary]
    if n_unclosed:
        lines.append(
            f"warning: {n_unclosed} unclosed span(s) dropped from the "
            "analysis (truncated trace?)"
        )
    if getattr(dump, "skipped_lines", 0):
        lines.append(
            f"warning: {dump.skipped_lines} malformed line(s) skipped while "
            "loading"
        )
    lines += [
        "",
        render_breakdown(records),
        "",
        render_percentiles(records),
    ]
    return "\n".join(lines)
