"""Run-comparison: per-counter deltas between two observability exports.

``repro diff`` loads two outputs of the same kind — a profiler JSON, a
metrics-registry JSON, a consistency-audit JSONL, a time-series JSONL,
or a span-trace JSONL — flattens each into ``{counter: number}`` and
reports every counter whose relative change exceeds a threshold.  Its
primary job is the CI regression gate: a committed baseline profile is
diffed against a freshly generated one, so any change that silently
shifts simulated behaviour (an extra event, a different queue depth, a
lost determinism guarantee) fails the build with a named counter instead
of a pile of mismatched bytes.

Flattening is format-aware for the JSONL kinds (which need aggregation
to be comparable) and generic for JSON (every numeric leaf becomes a
dotted-path counter), so new exporters are diffable without touching
this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .ioutil import logical_suffix, read_text

__all__ = [
    "load_counters",
    "flatten_json",
    "diff_counters",
    "CounterDelta",
    "render_diff",
]


def flatten_json(data: Any, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of a JSON document as ``dotted.path -> value``.

    Lists index as ``path[i]``; booleans and strings are skipped (they
    either never drift or are better eyeballed than thresholded).
    """
    out: Dict[str, float] = {}
    if isinstance(data, dict):
        for key in data:
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_json(data[key], sub))
    elif isinstance(data, list):
        for i, item in enumerate(data):
            out.update(flatten_json(item, f"{prefix}[{i}]"))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        out[prefix] = float(data)
    return out


def _flatten_meta(meta: Dict[str, Any]) -> Dict[str, float]:
    """Provenance manifest fields as ``meta.*`` counters.

    Numbers map directly; strings become presence counters
    (``meta.key[value] = 1``) so a changed scheduler or protocol shows
    up as an added+removed pair instead of being silently skipped.
    ``diff_counters`` ignores ``meta.*`` unless ``--only meta`` asks.
    """
    out: Dict[str, float] = {}
    for key, value in meta.items():
        if key == "type" or value is None:
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"meta.{key}"] = float(value)
        else:
            out[f"meta.{key}[{value}]"] = 1.0
    return out


def _flatten_profile(data: Dict[str, Any]) -> Dict[str, float]:
    """Profile JSON keyed by resource name, not list index, so reordered
    or added resources shift nothing else."""
    out: Dict[str, float] = {}
    for entry in data.get("resources", []):
        prefix = f"resource.{entry.get('run', 0)}.{entry.get('name', '?')}"
        for key, value in entry.items():
            if key in ("run", "name"):
                continue
            out.update(flatten_json(value, f"{prefix}.{key}"))
    for lock in data.get("locks", []):
        prefix = f"lock.{lock.get('run', 0)}.{lock.get('node', '?')}.{lock.get('name', '?')}"
        for key, value in lock.items():
            if key in ("run", "node", "name"):
                continue
            out.update(flatten_json(value, f"{prefix}.{key}"))
    out["dropped"] = float(data.get("dropped", 0))
    return out


def _flatten_jsonl(path: Path) -> Dict[str, float]:
    """Aggregate a JSONL export into comparable counters.

    * audit records (have ``class``) → per-class counts + wasted totals;
    * time-series samples (have ``series``) → final value per series;
    * streaming windows (``type == "window"``) → per-cell request and
      saturated-window totals;
    * span/event traces (have ``type``) → span count + per-category
      duration sums.
    """
    counts: Dict[str, float] = {}
    for line in read_text(path).splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "meta":  # provenance manifest
            counts.update(_flatten_meta(record))
        elif "class" in record:  # audit
            counts[f"class.{record['class']}"] = (
                counts.get(f"class.{record['class']}", 0.0) + 1.0
            )
            counts["audits"] = counts.get("audits", 0.0) + 1.0
            counts["wasted_seconds"] = (
                counts.get("wasted_seconds", 0.0)
                + float(record.get("wasted", 0.0))
            )
        elif "series" in record:  # time series: keep the last sample
            for name, value in record["series"].items():
                counts[f"series.{name}"] = float(value)
            counts["samples"] = counts.get("samples", 0.0) + 1.0
        elif record.get("type") == "window":  # streaming telemetry
            cell = record.get("cell")
            prefix = "window" if cell is None else f"window.cell{cell}"
            for field in ("arrivals", "completions", "errors", "hits",
                          "misses"):
                counts[f"{prefix}.{field}"] = (
                    counts.get(f"{prefix}.{field}", 0.0)
                    + float(record.get(field, 0))
                )
            counts[f"{prefix}.windows"] = (
                counts.get(f"{prefix}.windows", 0.0) + 1.0
            )
            if record.get("saturated"):
                counts[f"{prefix}.saturated_windows"] = (
                    counts.get(f"{prefix}.saturated_windows", 0.0) + 1.0
                )
        elif record.get("type") == "span":
            counts["spans"] = counts.get("spans", 0.0) + 1.0
            end, start = record.get("end"), record.get("start")
            category = record.get("category", "other")
            if end is not None and start is not None:
                counts[f"span_seconds.{category}"] = (
                    counts.get(f"span_seconds.{category}", 0.0)
                    + (float(end) - float(start))
                )
        else:
            counts["other_records"] = counts.get("other_records", 0.0) + 1.0
    return counts


def load_counters(path: Union[str, Path]) -> Dict[str, float]:
    """Flatten any supported observability export into counters."""
    path = Path(path)
    if logical_suffix(path) == ".jsonl":
        return _flatten_jsonl(path)
    data = json.loads(read_text(path))
    out: Dict[str, float] = {}
    if isinstance(data, dict):
        meta = data.pop("meta", None)
        if isinstance(meta, dict):
            out.update(_flatten_meta(meta))
    if isinstance(data, dict) and "resources" in data and "version" in data:
        out.update(_flatten_profile(data))
    else:
        out.update(flatten_json(data))
    return out


class CounterDelta:
    """One drifted counter: baseline vs current with relative change."""

    __slots__ = ("name", "base", "current", "delta", "relative", "status")

    def __init__(self, name: str, base: Optional[float],
                 current: Optional[float]):
        self.name = name
        self.base = base
        self.current = current
        if base is None:
            self.status = "added"
            self.delta = current or 0.0
            self.relative = float("inf")
        elif current is None:
            self.status = "removed"
            self.delta = -base
            self.relative = float("inf")
        else:
            self.status = "changed"
            self.delta = current - base
            if base == 0.0:
                self.relative = float("inf") if self.delta else 0.0
            else:
                self.relative = abs(self.delta) / abs(base)

    def __repr__(self) -> str:
        return f"<CounterDelta {self.name} {self.base} -> {self.current}>"


def diff_counters(
    base: Dict[str, float],
    current: Dict[str, float],
    threshold: float = 0.0,
    abs_threshold: float = 1e-9,
    ignore: Sequence[str] = (),
    only: Sequence[str] = (),
) -> List[CounterDelta]:
    """Counters that drifted beyond the thresholds, sorted by |relative|.

    A counter drifts when ``|delta| > abs_threshold`` **and** its
    relative change exceeds ``threshold`` (missing/added counters always
    drift).  ``ignore``/``only`` filter by substring match on the name.
    Provenance manifests (``meta.*``) are ignored unless ``only`` names
    them: a parallel run legitimately carries a different shard layout
    than the serial run it must otherwise match counter for counter.
    """
    if not only:
        ignore = tuple(ignore) + ("meta.",)
    names = sorted(set(base) | set(current))
    out: List[CounterDelta] = []
    for name in names:
        if only and not any(want in name for want in only):
            continue
        if any(skip in name for skip in ignore):
            continue
        delta = CounterDelta(name, base.get(name), current.get(name))
        if delta.status == "changed":
            if abs(delta.delta) <= abs_threshold:
                continue
            if delta.relative <= threshold:
                continue
        out.append(delta)
    out.sort(key=lambda d: (-d.relative, d.name))
    return out


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_diff(
    deltas: Sequence[CounterDelta],
    base_label: str = "baseline",
    current_label: str = "current",
    max_rows: int = 50,
) -> str:
    """Human-readable drift report (empty diff → one-line all-clear)."""
    if not deltas:
        return f"no drift: {current_label} matches {base_label}"
    lines = [
        f"{len(deltas)} counter(s) drifted ({base_label} -> {current_label}):"
    ]
    name_w = max(len(d.name) for d in deltas[:max_rows])
    for delta in deltas[:max_rows]:
        rel = (
            "new" if delta.status == "added"
            else "gone" if delta.status == "removed"
            else f"{100.0 * delta.relative:.2f}%"
        )
        lines.append(
            f"  {delta.name.ljust(name_w)}  {_fmt(delta.base)} -> "
            f"{_fmt(delta.current)}  ({rel})"
        )
    if len(deltas) > max_rows:
        lines.append(f"  ... and {len(deltas) - max_rows} more")
    return "\n".join(lines)
