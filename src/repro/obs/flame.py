"""Fold span trees into flame-graph stacks.

A trace dump (PR 1) is a forest of request span trees.  This module
collapses it into the *folded-stack* format popularized by Brendan
Gregg's ``flamegraph.pl`` and understood by speedscope: one line per
unique stack, frames joined by ``;``, followed by an integer count —
here **microseconds of self sim-time** (span duration minus the summed
durations of its closed children).

The root frame of every stack is the request's cache **outcome**
(``local-hit`` / ``remote-hit`` / ``false-hit`` / ``miss`` / …, the same
taxonomy as the latency analyzer), so the flame graph directly answers
the paper's question: *which request class burns the simulated time,
and in which phase*.  Network hop spans (``hop:src->dst``) are collapsed
to a single ``hop`` frame to keep stack cardinality independent of
cluster size.

Rendering in-terminal goes through
:func:`repro.metrics.ascii.flame_chart`; the raw folded text feeds
external tools unchanged::

    repro profile --trace trace.jsonl --folded-out stacks.folded
    flamegraph.pl stacks.folded > flame.svg
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from .analyze import outcome_of
from .trace import Span, TraceDump

from .ioutil import write_text

__all__ = [
    "fold_spans", "fold_blame", "render_folded", "write_folded", "frame_name",
]

#: Folded counts are integers; sim seconds are scaled to microseconds.
MICROSECONDS = 1e6


def frame_name(span: Span) -> str:
    """Stack-frame label for a span (hop spans collapse to ``hop``)."""
    name = span.name
    if name.startswith("hop:"):
        return "hop"
    return name


def fold_spans(dump: TraceDump) -> Dict[str, float]:
    """Collapse every complete trace into ``stack -> self sim-seconds``.

    Unclosed spans (truncated traces) contribute nothing; a parent's
    self-time never goes negative even if overlapping children oversum
    its duration (concurrent children are attributed to themselves).
    """
    folded: Dict[str, float] = {}
    for _trace_id, spans in sorted(dump.traces().items()):
        root = next((s for s in spans if s.parent_id is None), None)
        if root is None or root.end is None:
            continue
        children: Dict[int, List[Span]] = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        # Iterative DFS in deterministic (start, span_id) order.
        stack = [(root, outcome_of(root) + ";" + frame_name(root))]
        while stack:
            span, path = stack.pop()
            kids = [c for c in children.get(span.span_id, [])
                    if c.end is not None]
            child_total = 0.0
            for child in kids:
                child_total += child.duration
            self_time = span.duration - child_total
            if self_time > 0.0:
                folded[path] = folded.get(path, 0.0) + self_time
            for child in sorted(kids, key=lambda c: (c.start, c.span_id)):
                stack.append((child, path + ";" + frame_name(child)))
    return folded


def fold_blame(records) -> Dict[str, float]:
    """Blame-rooted stacks from critical-path decompositions.

    Takes :class:`~repro.obs.critical.RequestBlame` records and folds
    them into ``outcome;segment`` stacks — the flame graph of *where the
    latency went* rather than which span owned it.  Complements
    :func:`fold_spans` (same folded format, renders through the same
    :func:`~repro.metrics.ascii.flame_chart`).
    """
    folded: Dict[str, float] = {}
    for record in records:
        for segment, seconds in record.segments.items():
            if seconds > 0.0:
                path = f"{record.outcome};{segment}"
                folded[path] = folded.get(path, 0.0) + seconds
    return folded


def render_folded(folded: Dict[str, float]) -> str:
    """Folded-stack text: ``frame;frame;frame <microseconds>`` per line.

    Lines are sorted by stack for determinism; zero-count stacks (self
    time under half a microsecond) are dropped, as flamegraph.pl would
    ignore them anyway.
    """
    lines = []
    for path in sorted(folded):
        count = int(round(folded[path] * MICROSECONDS))
        if count > 0:
            lines.append(f"{path} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded(folded: Dict[str, float], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    write_text(path, render_folded(folded))
    return path
