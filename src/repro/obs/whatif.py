"""Causal what-if profiling: virtual-speedup replay of recorded runs.

Coz showed that the way to answer "would a faster X help?" is not to
stare at a flat profile but to *virtually speed X up* and measure the
effect on end-to-end behaviour.  We hold a complete record of every
request — the span tree from the tracer plus the span-linked resource
intervals from the profiler — so we can do the replay analytically:

1. :func:`predict` walks each request's span tree bottom-up.  A span's
   window splits into **child cover** (replayed recursively, children
   clipped to the parent window) and **self time**, which the shared
   critical-path allocator (:mod:`repro.obs.critical`) attributes to
   blame segments; each segment is then divided by its virtual speedup.
   Overlapping children are grouped into connected clusters and a
   cluster's replayed extent is the max over its children of
   ``(unscaled start offset) + (replayed child)`` — concurrency is
   preserved, the slowest branch dominates, and with all speedups at 1
   the replay reproduces every recorded latency *exactly* (the identity
   property the tests pin down).

2. ``repro whatif --validate`` closes the loop: it actually re-runs the
   simulation with the scenario's rates scaled for real (CPU via
   ``MachineCosts.cpu_slowdown``, disk via :class:`DiskParams`, LAN via
   ``Network(latency=...)``, cluster size via ``n_nodes``) and reports
   the prediction error through the same drift machinery as ``repro
   diff``.

Scenarios are strings: ``cpu:2`` (CPUs 2x faster), ``disk:4`` (disk 4x
faster), ``lan:4`` (LAN latency / 4), ``nodes:+2`` (two more nodes).
Factors below 1 model slowdowns (``cpu:0.5`` = half-speed CPUs).

Known approximations, all deliberate: ``lan`` scales only the traced
hop latency (``net-latency``), not the request wire time hidden inside
``queue-wait``; ``nodes`` has no per-segment effect (a serial client
gains nothing from more nodes — the honest prediction is "no change",
and validation confirms it on the Table 3 workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..metrics.reporting import render_table
from .critical import _allocate, intervals_by_span
from .trace import Span

__all__ = [
    "Scenario",
    "parse_scenario",
    "segment_speedups",
    "WhatIfPrediction",
    "predict",
    "ValidationRow",
    "run_cell",
    "validate_scenarios",
    "render_whatif_report",
]

#: Scenario resources and the knob each one turns.
SCENARIO_RESOURCES = ("cpu", "disk", "lan", "nodes")


@dataclass(frozen=True)
class Scenario:
    """One virtual-speedup hypothesis, e.g. ``disk:2``."""

    resource: str
    #: Speedup factor for cpu/disk/lan (>0); node-count delta for nodes.
    factor: float

    @property
    def label(self) -> str:
        if self.resource == "nodes":
            return f"nodes:{int(self.factor):+d}"
        factor = self.factor
        text = f"{factor:g}"
        return f"{self.resource}:{text}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def parse_scenario(text: str) -> Scenario:
    """Parse ``"cpu:2"`` / ``"lan:4"`` / ``"nodes:+1"`` into a Scenario."""
    resource, sep, value = text.strip().partition(":")
    resource = resource.strip().lower()
    if not sep or resource not in SCENARIO_RESOURCES:
        raise ValueError(
            f"bad scenario {text!r}: expected <resource>:<factor> with "
            f"resource in {'/'.join(SCENARIO_RESOURCES)}"
        )
    try:
        factor = float(value)
    except ValueError:
        raise ValueError(f"bad scenario {text!r}: {value!r} is not a number")
    if resource == "nodes":
        if factor != int(factor):
            raise ValueError(f"bad scenario {text!r}: node delta must be whole")
        return Scenario(resource, float(int(factor)))
    if factor <= 0:
        raise ValueError(f"bad scenario {text!r}: factor must be > 0")
    return Scenario(resource, factor)


def segment_speedups(scenario: Optional[Scenario]) -> Dict[str, float]:
    """Blame-segment -> divide-by factor for the analytic replay."""
    if scenario is None:
        return {}
    k = scenario.factor
    if scenario.resource == "cpu":
        return {"cpu-service": k, "cpu-queue": k}
    if scenario.resource == "disk":
        return {"disk-service": k, "disk-wait": k}
    if scenario.resource == "lan":
        return {"net-latency": k}
    return {}  # nodes: no per-segment speedup (see module doc)


# -- analytic replay ---------------------------------------------------------

def _replay_span(
    span: Span,
    children: Dict[int, List[Span]],
    index: Dict[Tuple[int, int], List[Dict[str, Any]]],
    speedups: Dict[str, float],
    trace_id: int,
) -> float:
    """Replayed duration of ``span`` under the virtual speedups."""
    window = span.duration
    if window <= 0.0:
        return 0.0
    kids: List[Tuple[float, float, float]] = []
    for kid in sorted(
        children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
    ):
        if kid.end is None:
            continue
        a, b = max(kid.start, span.start), min(kid.end, span.end)
        if b <= a:
            continue
        replayed = _replay_span(kid, children, index, speedups, trace_id)
        full = kid.end - kid.start
        if full > 0.0 and b - a < full:
            # A child sticking out of the parent window contributes only
            # the covered fraction (fire-and-forget hops may outlive the
            # phase that issued them).
            replayed *= (b - a) / full
        kids.append((a, b, replayed))

    # Group overlapping children into connected clusters; each cluster
    # replays as its slowest branch (start offsets stay unscaled: they
    # are dependency delays the scenario does not remove).
    union = 0.0
    replayed_cover = 0.0
    i = 0
    while i < len(kids):
        cluster_start = kids[i][0]
        cluster_end = kids[i][1]
        extent = kids[i][0] - cluster_start + kids[i][2]
        j = i + 1
        while j < len(kids) and kids[j][0] < cluster_end:
            cluster_end = max(cluster_end, kids[j][1])
            extent = max(extent, kids[j][0] - cluster_start + kids[j][2])
            j += 1
        union += cluster_end - cluster_start
        replayed_cover += extent
        i = j

    self_time = max(0.0, window - union)
    scaled_self = 0.0
    if self_time > 0.0:
        buckets = _allocate(
            span, self_time, index.get((trace_id, span.span_id), ())
        )
        for bucket, amount in buckets.items():
            scaled_self += amount / speedups.get(bucket, 1.0)
    return scaled_self + replayed_cover


@dataclass
class WhatIfPrediction:
    """Analytic replay of one scenario over a recorded run."""

    scenario: Optional[Scenario]
    requests: int
    baseline_mean: float
    predicted_mean: float
    #: Per-request (recorded, replayed) latencies, trace order.
    latencies: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_mean <= 0.0:
            return 1.0
        return self.baseline_mean / self.predicted_mean


def predict(
    dump,
    intervals: Optional[Iterable[Dict[str, Any]]],
    scenario: Optional[Scenario],
) -> WhatIfPrediction:
    """Replay every complete trace in ``dump`` under ``scenario``.

    ``dump`` is a :class:`~repro.obs.TraceCollector` or
    :class:`~repro.obs.TraceDump`; ``intervals`` the matching profiler
    interval records (``None`` degrades to span-category attribution).
    Zero complete traces yields zero means, never a division error.
    """
    index = intervals_by_span(intervals)
    speedups = segment_speedups(scenario)
    pairs: List[Tuple[float, float]] = []
    for trace_id, spans in sorted(dump.traces().items()):
        root = next((s for s in spans if s.parent_id is None), None)
        if root is None or root.end is None:
            continue
        children: Dict[int, List[Span]] = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        replayed = _replay_span(root, children, index, speedups, trace_id)
        pairs.append((root.duration, replayed))
    n = len(pairs)
    return WhatIfPrediction(
        scenario=scenario,
        requests=n,
        baseline_mean=sum(p[0] for p in pairs) / n if n else 0.0,
        predicted_mean=sum(p[1] for p in pairs) / n if n else 0.0,
        latencies=pairs,
    )


# -- validation: actually re-run with scaled rates ---------------------------

#: Default LAN latency of :class:`~repro.net.Network` (kept in sync by a
#: regression test rather than an import cycle).
_DEFAULT_LAN_LATENCY = 0.0001


@dataclass
class CellResult:
    """One simulated cell of the validation matrix."""

    mean_latency: float
    requests: int
    tracer: Optional[object] = None
    profiler: Optional[object] = None


def run_cell(
    scenario: Optional[Scenario] = None,
    n_nodes: int = 2,
    n_requests: int = 40,
    cpu_time: float = 1.0,
    observe: bool = False,
) -> CellResult:
    """Run one Table 3-style cell, optionally under a *real* scenario.

    This is the ground truth for ``repro whatif --validate``: the same
    workload as :func:`repro.experiments.run_table3` (unique cacheable
    CGI requests from one serial client, cooperative caching on), with
    the scenario's resource rates scaled for real.  With
    ``observe=True`` the run records spans + linked intervals so the
    baseline cell can feed :func:`predict`.
    """
    from ..clients import ClientThread
    from ..core import SwalaCluster, SwalaConfig
    from ..hosts import SUN_ULTRA1
    from ..hosts.costs import DiskParams
    from ..net import Network
    from ..sim import Simulator
    from ..workload import unique_cgi_trace
    from .profiler import ResourceProfiler
    from .trace import TraceCollector

    costs = SUN_ULTRA1
    latency = _DEFAULT_LAN_LATENCY
    nodes = n_nodes
    if scenario is not None:
        k = scenario.factor
        if scenario.resource == "cpu":
            costs = costs.with_(cpu_slowdown=costs.cpu_slowdown / k)
        elif scenario.resource == "disk":
            disk = costs.disk
            costs = costs.with_(disk=DiskParams(
                access_time=disk.access_time / k,
                transfer_rate=disk.transfer_rate * k,
                block_size=disk.block_size,
            ))
        elif scenario.resource == "lan":
            latency = latency / k
        elif scenario.resource == "nodes":
            nodes = max(1, n_nodes + int(k))

    sim = Simulator()
    network = Network(sim, latency=latency)
    cluster = SwalaCluster(
        sim, nodes, SwalaConfig(), network=network, costs=costs
    )
    tracer = profiler = None
    if observe:
        tracer = TraceCollector()
        tracer.new_run(label="whatif-baseline")
        cluster.attach_tracer(tracer)
        profiler = ResourceProfiler(record_intervals=True)
        profiler.new_run()
        cluster.attach_profiler(profiler)
    cluster.start()
    trace = unique_cgi_trace(n_requests, cpu_time=cpu_time)
    client = ClientThread(
        sim, cluster.network, "client0", cluster.node_names[0], list(trace)
    )
    sim.run(until=client.start())
    if profiler is not None:
        profiler.finalize()
    return CellResult(
        mean_latency=client.response_times.mean,
        requests=n_requests,
        tracer=tracer,
        profiler=profiler,
    )


@dataclass
class ValidationRow:
    """Predicted vs. actually re-simulated latency for one scenario."""

    label: str
    baseline_mean: float
    predicted_mean: float
    actual_mean: float

    @property
    def error(self) -> float:
        """Relative prediction error vs. the real rerun."""
        if self.actual_mean <= 0.0:
            return 0.0 if self.predicted_mean <= 0.0 else float("inf")
        return abs(self.predicted_mean - self.actual_mean) / self.actual_mean

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_mean <= 0.0:
            return 1.0
        return self.baseline_mean / self.predicted_mean

    @property
    def actual_speedup(self) -> float:
        if self.actual_mean <= 0.0:
            return 1.0
        return self.baseline_mean / self.actual_mean


def validate_scenarios(
    scenarios: Sequence[Scenario],
    n_nodes: int = 2,
    n_requests: int = 40,
    cpu_time: float = 1.0,
) -> List[ValidationRow]:
    """Record one baseline cell, predict each scenario, re-run for real.

    The returned rows start with the ``identity`` sanity row (replay of
    the baseline under no speedups — its error is pure replay bias and
    should be ~0).
    """
    base = run_cell(None, n_nodes, n_requests, cpu_time, observe=True)
    intervals = base.profiler.intervals if base.profiler is not None else None
    rows = []
    identity = predict(base.tracer, intervals, None)
    rows.append(ValidationRow(
        label="identity",
        baseline_mean=base.mean_latency,
        predicted_mean=identity.predicted_mean,
        actual_mean=base.mean_latency,
    ))
    for scenario in scenarios:
        prediction = predict(base.tracer, intervals, scenario)
        actual = run_cell(scenario, n_nodes, n_requests, cpu_time)
        rows.append(ValidationRow(
            label=scenario.label,
            baseline_mean=base.mean_latency,
            predicted_mean=prediction.predicted_mean,
            actual_mean=actual.mean_latency,
        ))
    return rows


def render_whatif_report(
    rows: Sequence[ValidationRow],
    max_error: Optional[float] = None,
) -> str:
    """Prediction-error table (the ``repro whatif --validate`` output)."""
    if not rows:
        return "(no scenarios)"
    table = render_table(
        "What-if validation: predicted vs. re-simulated mean latency",
        ["scenario", "baseline (s)", "predicted (s)", "actual (s)",
         "pred speedup", "actual speedup", "error %"],
        [
            (
                r.label, r.baseline_mean, r.predicted_mean, r.actual_mean,
                r.predicted_speedup, r.actual_speedup, 100.0 * r.error,
            )
            for r in rows
        ],
        note="error = |predicted - actual| / actual on a real rerun with "
        "the scenario's rates scaled",
    )
    if max_error is not None:
        worst = max(rows, key=lambda r: r.error)
        verdict = (
            f"FAIL: {worst.label} error {100.0 * worst.error:.2f}% exceeds "
            f"{100.0 * max_error:.2f}%"
            if worst.error > max_error
            else f"OK: worst error {100.0 * worst.error:.2f}% "
            f"({worst.label}) within {100.0 * max_error:.2f}%"
        )
        table += "\n" + verdict
    return table


def render_predictions(
    predictions: Sequence[WhatIfPrediction],
) -> str:
    """Ranking table for replay-only mode (no validation reruns)."""
    if not predictions:
        return "(no scenarios)"
    rows = sorted(predictions, key=lambda p: p.predicted_mean)
    return render_table(
        "What-if predictions (analytic replay, fastest first)",
        ["scenario", "requests", "baseline (s)", "predicted (s)", "speedup"],
        [
            (
                p.scenario.label if p.scenario else "identity",
                p.requests, p.baseline_mean, p.predicted_mean,
                p.predicted_speedup,
            )
            for p in rows
        ],
    )
