"""Forward proxy caching (the related-work alternative the paper contrasts
with server-side dynamic-content caching)."""

from .proxy import ProxyCache

__all__ = ["ProxyCache"]
