"""A forward proxy cache between clients and an origin server.

The paper's related-work argument (§1–2): proxy caching attacks the
*network* bottleneck by keeping static files near clients, but it
"intentionally avoid[s] caching dynamic data" — it cannot cache
authenticated/per-user output, and it has no view of server execution
time for replacement decisions.  Swala attacks the *CPU* bottleneck
instead.  This module builds the proxy so the comparison can be run.

Topology: the proxy bridges two networks — a fast client-side LAN and a
slower WAN toward the origin::

    clients ──LAN──▶ ProxyCache ──WAN──▶ origin server

A proxy hit answers on the LAN only.  A miss forwards the connection over
the WAN, relays the origin's response back, and (if the response is
cacheable under HTTP semantics) stores it.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from ..cache import CacheEntry, CacheStore
from ..core.protocol import (
    HTTP_REQUEST_BYTES,
    HTTP_RESPONSE_HEADER_BYTES,
    HttpConnection,
    HttpResponse,
)
from ..core.stats import NodeStats
from ..hosts import Machine
from ..net import Network
from ..servers.base import HTTP_PORT
from ..sim import Simulator, Store
from ..workload import Request, RequestKind

__all__ = ["ProxyCache"]

_proxy_fetch_ids = itertools.count()


class ProxyCache:
    """Shared forward cache for a population of clients.

    ``cache_dynamic=False`` (the realistic 1990s default) never caches CGI
    responses.  ``cache_dynamic=True`` models the naive alternative the
    paper warns about: it still must skip per-user (``cacheable=False``)
    responses, and its TTL heuristic cannot use execution time.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        lan: Network,
        wan: Network,
        origin: str,
        name: Optional[str] = None,
        capacity: int = 10_000,
        policy: str = "lru",
        cache_dynamic: bool = False,
        dynamic_ttl: float = 60.0,
        n_threads: int = 32,
    ):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if dynamic_ttl <= 0:
            raise ValueError("dynamic_ttl must be positive")
        self.sim = sim
        self.machine = machine
        self.lan = lan
        self.wan = wan
        self.origin = origin
        self.name = name or machine.name
        self.cache_dynamic = cache_dynamic
        self.dynamic_ttl = dynamic_ttl
        self.n_threads = n_threads
        self.listen_box: Store = lan.register(self.name, HTTP_PORT)
        wan.attach(self.name)
        self.store = CacheStore(machine.fs, capacity, policy=policy, owner=self.name)
        self.stats = NodeStats(node=self.name)
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        for tid in range(self.n_threads):
            self.sim.process(self._worker(tid), name=f"{self.name}.w{tid}")

    def _worker(self, tid: int):
        reply_port = f"proxy-origin-rt{tid}"
        reply_box = self.wan.register(self.name, reply_port)
        while True:
            msg = yield self.listen_box.get()
            yield self.machine.dispatch_thread()
            yield from self.handle(msg.payload, reply_box, reply_port)

    # -- policy ---------------------------------------------------------------
    def may_cache(self, request: Request) -> bool:
        """HTTP-semantics admissibility at a *shared* proxy."""
        if request.kind is RequestKind.FILE:
            return True
        # Dynamic: only if configured, and never per-user/authenticated
        # output (the proxy serves many users; the paper's §2 point).
        return self.cache_dynamic and request.cacheable

    # -- request path -----------------------------------------------------------
    def handle(self, conn: HttpConnection, reply_box: Store, reply_port: str) -> Generator:
        request = conn.request
        yield self.machine.accept_and_parse()
        now = self.sim.now
        entry = self.store.get(request.url) if self.may_cache(request) else None
        if entry is not None and entry.expired(now):
            entry = None
        if entry is not None:
            # Proxy hit: serve from the proxy's own disk/buffer cache.
            yield from self.machine.serve_file(entry.file_path, mmap=True)
            self.store.record_access(request.url, now)
            if request.kind is RequestKind.FILE:
                self.stats.files_served += 1
            self.stats.local_hits += 1
            yield self.machine.send_bytes_cpu(request.response_size)
            response = HttpResponse(
                request=request, server=self.name, source="proxy-cache",
                sent_at=conn.sent_at,
            )
            self.lan.send(
                self.name, conn.client, conn.reply_port, response, response.size
            )
            served_from = "proxy-cache"
        else:
            # Miss: fetch from the origin over the WAN, relay, maybe store.
            self.stats.misses += 1
            origin_conn = HttpConnection(
                request=request,
                client=self.name,
                reply_port=reply_port,
                sent_at=self.sim.now,
            )
            self.wan.send(
                self.name, self.origin, HTTP_PORT, origin_conn, HTTP_REQUEST_BYTES
            )
            origin_msg = yield reply_box.get()
            origin_response: HttpResponse = origin_msg.payload
            # Receive + relay copy costs.
            yield self.machine.compute(
                self.machine.costs.net_send_per_byte_cpu * origin_response.size
            )
            if self.may_cache(request) and origin_response.ok:
                ttl = (
                    float("inf")
                    if request.kind is RequestKind.FILE
                    else self.dynamic_ttl
                )
                entry = CacheEntry(
                    url=request.url,
                    owner=self.name,
                    size=request.response_size,
                    exec_time=request.cpu_time,
                    created=self.sim.now,
                    ttl=ttl,
                )
                self.store.insert(entry, self.sim.now)
                self.stats.inserts += 1
            yield self.machine.send_bytes_cpu(origin_response.size)
            relayed = HttpResponse(
                request=request, server=self.name,
                source=f"via-proxy:{origin_response.source}",
                ok=origin_response.ok, sent_at=conn.sent_at,
            )
            self.lan.send(
                self.name, conn.client, conn.reply_port, relayed, relayed.size
            )
            served_from = "origin"
        self.stats.requests += 1
        self.stats.observe_response(served_from, self.sim.now - conn.sent_at)

    def __repr__(self) -> str:
        return (
            f"<ProxyCache {self.name!r} cached={len(self.store)} "
            f"hits={self.stats.local_hits} misses={self.stats.misses}>"
        )
