"""Workload synthesis and access-log analysis."""

from .adl import PAPER_ADL, AdlSpec, generate_adl_trace
from .analysis import (
    PAPER_TABLE1_THRESHOLDS,
    ThresholdRow,
    analyze_caching_potential,
)
from .describe import TraceSummary, describe_trace, render_trace_summary
from .locality import (
    FenwickTree,
    LocalityProfile,
    locality_profile,
    stack_distances,
)
from .io import load_trace, save_trace, trace_from_jsonl, trace_to_jsonl
from .logfile import (
    ClfParseError,
    ClfRecord,
    default_cgi_classifier,
    load_clf,
    parse_clf_line,
)
from .generators import (
    hit_ratio_trace,
    uncacheable_cgi_trace,
    unique_cgi_trace,
    zipf_cgi_trace,
)
from .request import Request, RequestKind, TimedRequest
from .traces import Trace
from .webstone import WEBSTONE_FILE_MIX, nullcgi_trace, webstone_file_trace

__all__ = [
    "Request",
    "RequestKind",
    "TimedRequest",
    "Trace",
    "AdlSpec",
    "PAPER_ADL",
    "generate_adl_trace",
    "ThresholdRow",
    "analyze_caching_potential",
    "PAPER_TABLE1_THRESHOLDS",
    "WEBSTONE_FILE_MIX",
    "webstone_file_trace",
    "nullcgi_trace",
    "unique_cgi_trace",
    "uncacheable_cgi_trace",
    "hit_ratio_trace",
    "zipf_cgi_trace",
    "save_trace",
    "load_trace",
    "trace_to_jsonl",
    "trace_from_jsonl",
    "ClfRecord",
    "ClfParseError",
    "parse_clf_line",
    "load_clf",
    "default_cgi_classifier",
    "TraceSummary",
    "describe_trace",
    "render_trace_summary",
    "FenwickTree",
    "LocalityProfile",
    "locality_profile",
    "stack_distances",
]
