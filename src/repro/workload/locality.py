"""Temporal-locality analysis: LRU stack distances.

The paper's Fig. 4 workload "contains the same number of repeats and the
same amount of temporal locality as the original log".  Repeats are easy
to count; *temporal locality* is classically quantified by the LRU stack
distance of each reference — the number of distinct URLs touched since the
previous reference to the same URL.  Small distances = strong locality =
small caches suffice (stack distance < cache size  <=>  LRU hit).

The computation uses the standard O(n log n) algorithm: a Fenwick tree
marks the positions of each URL's most recent reference; the stack
distance of a new reference to ``u`` is the number of marked positions
after ``u``'s previous reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .traces import Trace

__all__ = ["FenwickTree", "stack_distances", "LocalityProfile", "locality_profile"]


class FenwickTree:
    """Binary indexed tree over ``[0, n)`` supporting point add + prefix sum."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"size must be >= 0, got {n}")
        self.n = n
        self._tree = [0] * (n + 1)

    def add(self, i: int, delta: int = 1) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"index {i} out of range [0, {self.n})")
        i += 1
        while i <= self.n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum over ``[0, i)``."""
        if i <= 0:
            return 0
        i = min(i, self.n)
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over ``[lo, hi)``."""
        return self.prefix_sum(hi) - self.prefix_sum(lo)


def stack_distances(trace: Trace) -> List[Optional[int]]:
    """Per-reference LRU stack distance; ``None`` for first references.

    A distance of 0 means the immediately-preceding *distinct* URL touched
    was this same URL (re-reference with nothing in between).

    The Fenwick-tree operations are inlined on a bare list here: this
    function runs over every reference of every analyzed trace, and the
    per-reference cost is three short bit-trick loops — method-call
    framing and bounds checks would double it.  ``FenwickTree`` remains
    the readable reference; ``tests/workload`` pins this loop against it.
    """
    n = len(trace)
    tree = [0] * (n + 1)
    last_pos: Dict[str, int] = {}
    out: List[Optional[int]] = []
    append = out.append
    get_prev = last_pos.get
    for i, request in enumerate(trace):
        url = request.url
        prev = get_prev(url)
        if prev is None:
            append(None)
        else:
            # Count distinct URLs referenced in (prev, i): exactly the
            # marked most-recent positions in that interval —
            # prefix_sum(i) - prefix_sum(prev + 1), inlined.
            total = 0
            j = i
            while j > 0:
                total += tree[j]
                j -= j & (-j)
            j = prev + 1
            while j > 0:
                total -= tree[j]
                j -= j & (-j)
            append(total)
            # add(prev, -1): the old position is no longer most-recent.
            j = prev + 1
            while j <= n:
                tree[j] -= 1
                j += j & (-j)
        # add(i, +1): mark this reference as the most recent to url.
        j = i + 1
        while j <= n:
            tree[j] += 1
            j += j & (-j)
        last_pos[url] = i
    return out


@dataclass(frozen=True)
class LocalityProfile:
    """Summary of a trace's reuse behaviour."""

    references: int
    repeats: int
    median_distance: float
    p90_distance: float
    mean_distance: float
    #: Fraction of repeats with stack distance < the given cache sizes —
    #: i.e. the LRU hit ratio a single cache of that size would achieve.
    hit_ratio_at: Tuple[Tuple[int, float], ...]

    def hit_ratio_for(self, cache_size: int) -> Optional[float]:
        for size, ratio in self.hit_ratio_at:
            if size == cache_size:
                return ratio
        return None


def locality_profile(
    trace: Trace, cache_sizes: Sequence[int] = (8, 64, 512)
) -> LocalityProfile:
    """Quantify temporal locality (and implied single-LRU hit ratios)."""
    distances = [d for d in stack_distances(trace) if d is not None]
    if not distances:
        return LocalityProfile(
            references=len(trace), repeats=0, median_distance=math.nan,
            p90_distance=math.nan, mean_distance=math.nan,
            hit_ratio_at=tuple((s, 0.0) for s in cache_sizes),
        )
    ordered = sorted(distances)

    def percentile(q: float) -> float:
        pos = (q / 100) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    total_refs = len(trace)
    hit_ratios = tuple(
        (
            size,
            sum(1 for d in distances if d < size) / total_refs,
        )
        for size in cache_sizes
    )
    return LocalityProfile(
        references=total_refs,
        repeats=len(distances),
        median_distance=percentile(50),
        p90_distance=percentile(90),
        mean_distance=sum(distances) / len(distances),
        hit_ratio_at=hit_ratios,
    )
