"""HTTP request model shared by all servers and workload generators."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RequestKind", "Request"]


class RequestKind(enum.Enum):
    """Static file fetch vs. dynamic (CGI) request."""

    FILE = "file"
    CGI = "cgi"


@dataclass(frozen=True)
class Request:
    """One HTTP GET.

    ``url`` is the caching identity: two requests with equal URLs (script +
    full query string) produce identical output and may share a cache entry,
    exactly as Swala keys its directory.

    For CGI requests, ``cpu_time`` is the script body's CPU demand in
    seconds (excluding the fork/exec cost the server model charges) and
    ``response_size`` the generated output size.  For files, ``cpu_time`` is
    zero and ``response_size`` is the file size.
    """

    url: str
    kind: RequestKind
    response_size: int
    cpu_time: float = 0.0
    #: False for e.g. per-user/authenticated scripts (Swala's config file
    #: marks these; they are executed but never cached).
    cacheable: bool = True

    def __post_init__(self):
        if self.response_size < 0:
            raise ValueError(f"negative response size for {self.url!r}")
        if self.cpu_time < 0:
            raise ValueError(f"negative cpu time for {self.url!r}")
        if self.kind is RequestKind.FILE and self.cpu_time:
            raise ValueError(f"file request {self.url!r} cannot have cpu_time")

    @property
    def is_cgi(self) -> bool:
        return self.kind is RequestKind.CGI

    @staticmethod
    def file(url: str, size: int) -> "Request":
        return Request(url=url, kind=RequestKind.FILE, response_size=size)

    @staticmethod
    def cgi(
        url: str, cpu_time: float, response_size: int, cacheable: bool = True
    ) -> "Request":
        return Request(
            url=url,
            kind=RequestKind.CGI,
            response_size=response_size,
            cpu_time=cpu_time,
            cacheable=cacheable,
        )


@dataclass(frozen=True)
class TimedRequest:
    """A request stamped with its (relative) arrival time in a trace."""

    time: float
    request: Request
