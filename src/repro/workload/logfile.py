"""Ingesting real web-server access logs (Common Log Format).

The paper's §3 methodology applied to logs you actually have: parse CLF
lines, filter out HEAD/POST and illegal requests exactly as the authors
did, classify dynamic requests, attach execution times (from an extended
log field if present, else an estimator), and hand back a
:class:`~repro.workload.Trace` ready for ``analyze_caching_potential`` or
cluster replay.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from .request import Request
from .traces import Trace

__all__ = [
    "ClfRecord",
    "ClfParseError",
    "parse_clf_line",
    "load_clf",
    "default_cgi_classifier",
]

# host ident user [timestamp] "METHOD /path PROTO" status bytes [duration]
_CLF_RE = re.compile(
    r'^(?P<host>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+'
    r'\[(?P<time>[^\]]+)\]\s+'
    r'"(?P<method>[A-Z]+)\s+(?P<path>\S+)(?:\s+(?P<proto>[^"]*))?"\s+'
    r'(?P<status>\d{3})\s+(?P<bytes>\d+|-)'
    r'(?:\s+(?P<duration>[0-9.]+))?\s*$'
)


class ClfParseError(ValueError):
    """A line that is not valid Common Log Format."""


@dataclass(frozen=True)
class ClfRecord:
    host: str
    timestamp: str
    method: str
    path: str
    status: int
    nbytes: int
    #: Optional extended-log service time in seconds (e.g. %T/%D-derived).
    duration: Optional[float] = None


def parse_clf_line(line: str) -> ClfRecord:
    """Parse one CLF (optionally duration-extended) line."""
    match = _CLF_RE.match(line.strip())
    if not match:
        raise ClfParseError(f"not a CLF line: {line!r}")
    nbytes = match["bytes"]
    duration = match["duration"]
    return ClfRecord(
        host=match["host"],
        timestamp=match["time"],
        method=match["method"],
        path=match["path"],
        status=int(match["status"]),
        nbytes=0 if nbytes == "-" else int(nbytes),
        duration=float(duration) if duration is not None else None,
    )


def default_cgi_classifier(path: str) -> bool:
    """The usual markers of a dynamic request in 1990s logs."""
    return "/cgi-bin/" in path or path.endswith(".cgi") or "?" in path


def load_clf(
    lines: Iterable[str],
    cgi_classifier: Callable[[str], bool] = default_cgi_classifier,
    default_cgi_time: float = 1.6,
    cgi_time_estimator: Optional[Callable[[ClfRecord], float]] = None,
    keep_statuses: range = range(200, 400),
    name: str = "clf",
) -> Trace:
    """Build a trace from CLF lines using the paper's filtering rules.

    * only GET requests are kept (the paper drops HEAD and POST);
    * illegal/failed requests (status outside ``keep_statuses``) and
      unparseable lines are dropped, as the paper removed them;
    * dynamic requests get their execution time from the log's duration
      field when present, else from ``cgi_time_estimator`` /
      ``default_cgi_time`` (the paper re-measured by re-sending; a plain
      trace file cannot, so the default is the paper's mean CGI time).
    """
    requests: List[Request] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = parse_clf_line(line)
        except ClfParseError:
            continue  # "illegal requests have been removed"
        if record.method != "GET":
            continue
        if record.status not in keep_statuses:
            continue
        if cgi_classifier(record.path):
            if record.duration is not None:
                cpu = record.duration
            elif cgi_time_estimator is not None:
                cpu = cgi_time_estimator(record)
            else:
                cpu = default_cgi_time
            requests.append(
                Request.cgi(record.path, cpu_time=cpu,
                            response_size=max(record.nbytes, 1))
            )
        else:
            requests.append(Request.file(record.path, size=record.nbytes))
    return Trace(requests, name=name)
