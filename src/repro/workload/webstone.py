"""WebStone workload (paper §5.1).

WebStone is the benchmark tool the paper uses for single-node comparisons.
Its standard file mix, quoted verbatim in the paper: a 500-byte file 35% of
the time, 5 KB 50%, 50 KB 14%, 500 KB 0.9%, and 1 MB 0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..sim import RandomStreams
from .request import Request
from .traces import Trace

__all__ = ["WEBSTONE_FILE_MIX", "webstone_file_trace", "nullcgi_trace"]

#: (file size in bytes, probability) — the paper's quoted mix.
WEBSTONE_FILE_MIX: Sequence[Tuple[int, float]] = (
    (500, 0.35),
    (5 * 1024, 0.50),
    (50 * 1024, 0.14),
    (500 * 1024, 0.009),
    (1024 * 1024, 0.001),
)


def webstone_file_trace(n_requests: int, seed: int = 0) -> Trace:
    """A random WebStone file-mix request sequence.

    Each size class is a single file (WebStone fetches a fixed file set), so
    the server's buffer cache warms quickly — as on the real testbed.
    """
    if n_requests < 0:
        raise ValueError(f"negative request count {n_requests}")
    rng = RandomStreams(seed).stream("webstone")
    sizes = [size for size, _ in WEBSTONE_FILE_MIX]
    weights = [p for _, p in WEBSTONE_FILE_MIX]
    requests: List[Request] = []
    for _ in range(n_requests):
        size = rng.choices(sizes, weights=weights)[0]
        requests.append(Request.file(url=f"/webstone/file{size}.bin", size=size))
    return Trace(requests, name=f"webstone-files(n={n_requests})")


def nullcgi_trace(
    n_requests: int, output_bytes: int = 90, cpu_time: float = 0.0005
) -> Trace:
    """The paper's ``nullcgi``: a CGI that does no work and writes <100 B.

    "No work" still prints a Content-Type header, so the script body costs
    a sub-millisecond sliver of CPU (which also keeps it admissible to a
    cache configured with a zero execution-time limit).  Every request is
    identical, so with caching enabled everything after the first request
    is a hit — isolating the fork/exec overhead vs. the cache fetch
    overhead (Fig. 3).
    """
    if n_requests < 0:
        raise ValueError(f"negative request count {n_requests}")
    req = Request.cgi(
        url="/cgi-bin/nullcgi", cpu_time=cpu_time, response_size=output_bytes
    )
    return Trace([req] * n_requests, name=f"nullcgi(n={n_requests})")
