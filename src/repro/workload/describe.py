"""Human-readable summaries of workload traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .request import RequestKind
from .traces import Trace

__all__ = ["TraceSummary", "describe_trace", "render_trace_summary"]


@dataclass(frozen=True)
class TraceSummary:
    name: str
    total: int
    cgi: int
    files: int
    unique: int
    repeats: int
    uncacheable: int
    total_service_time: float
    mean_cgi_time: float
    max_cgi_time: float
    total_bytes: int
    top_urls: Tuple[Tuple[str, int], ...]

    @property
    def cgi_fraction(self) -> float:
        return self.cgi / self.total if self.total else 0.0

    @property
    def max_possible_hit_ratio(self) -> float:
        return self.repeats / self.total if self.total else 0.0


def describe_trace(trace: Trace, top_k: int = 5) -> TraceSummary:
    cgi = trace.cgi_only()
    counts = trace.url_counts()
    top = tuple(
        sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    )
    return TraceSummary(
        name=trace.name,
        total=len(trace),
        cgi=len(cgi),
        files=sum(1 for r in trace if r.kind is RequestKind.FILE),
        unique=trace.unique_count,
        repeats=trace.repeat_count,
        uncacheable=sum(1 for r in trace if r.is_cgi and not r.cacheable),
        total_service_time=trace.total_service_time(),
        mean_cgi_time=cgi.mean_cpu_time(),
        max_cgi_time=max((r.cpu_time for r in cgi), default=0.0),
        total_bytes=sum(r.response_size for r in trace),
        top_urls=top,
    )


def render_trace_summary(summary: TraceSummary) -> str:
    lines = [
        f"trace {summary.name!r}:",
        f"  requests:        {summary.total:,} "
        f"({summary.cgi:,} CGI = {summary.cgi_fraction:.1%}, "
        f"{summary.files:,} files)",
        f"  unique URLs:     {summary.unique:,} "
        f"({summary.repeats:,} repeats -> max hit ratio "
        f"{summary.max_possible_hit_ratio:.1%})",
        f"  uncacheable CGI: {summary.uncacheable:,}",
        f"  service time:    {summary.total_service_time:,.1f}s total, "
        f"mean CGI {summary.mean_cgi_time:.3f}s, "
        f"max CGI {summary.max_cgi_time:.2f}s",
        f"  response bytes:  {summary.total_bytes:,}",
        "  hottest URLs:",
    ]
    for url, count in summary.top_urls:
        lines.append(f"    {count:6d}x {url}")
    return "\n".join(lines)
