"""Trace serialization: JSON-lines save/load for reproducible workloads."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .request import Request, RequestKind
from .traces import Trace

__all__ = ["save_trace", "load_trace", "trace_to_jsonl", "trace_from_jsonl"]


def trace_to_jsonl(trace: Trace) -> str:
    """One JSON object per request; the trace name rides in a header line."""
    lines = [json.dumps({"_trace": trace.name, "n": len(trace)})]
    for r in trace:
        lines.append(
            json.dumps(
                {
                    "url": r.url,
                    "kind": r.kind.value,
                    "size": r.response_size,
                    "cpu": r.cpu_time,
                    "cacheable": r.cacheable,
                },
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> Trace:
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        return Trace([], name="")
    header = json.loads(lines[0])
    if "_trace" not in header:
        raise ValueError("missing trace header line")
    requests = []
    for line in lines[1:]:
        obj = json.loads(line)
        requests.append(
            Request(
                url=obj["url"],
                kind=RequestKind(obj["kind"]),
                response_size=obj["size"],
                cpu_time=obj["cpu"],
                cacheable=obj["cacheable"],
            )
        )
    declared = header.get("n")
    if declared is not None and declared != len(requests):
        raise ValueError(
            f"truncated trace: header says {declared}, found {len(requests)}"
        )
    return Trace(requests, name=header["_trace"])


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    Path(path).write_text(trace_to_jsonl(trace))


def load_trace(path: Union[str, Path]) -> Trace:
    return trace_from_jsonl(Path(path).read_text())
