"""Synthetic Alexandria Digital Library (ADL) access log.

The paper analyzes the real ADL server log for Sep–Oct 1997.  We do not
have that log, so this module synthesizes one calibrated to every statistic
the paper publishes:

* 69,337 analyzed requests, 28,663 (41.3%) CGI;
* mean response times 0.03 s (file) and 1.6 s (CGI); CGI is ~97% of the
  total service time (~46,000 s);
* Table 1's surviving row: caching CGIs longer than 1 s needs ~189 cache
  entries, yields ~2,899 hits and saves ~13,241 s ≈ 29% of service time.

The CGI population is a three-band mixture (the natural reading of those
numbers):

* **hot** — a couple hundred distinct, slow (mean ≈ 4.6 s), heavily
  repeated queries (map-browsing operations many users share).  These alone
  account for the 1-second row of Table 1.
* **warm** — a few thousand distinct mid-cost queries with mild repetition;
  they contribute repeats only at the 0.1/0.5-second thresholds.
* **cold** — one-off queries (unique session-specific searches) with a
  heavy-tailed duration distribution; they dominate request count and fill
  the remaining service time but are uncacheable *in effect* (no repeats).

Popularity within the hot and warm bands is Zipf-like, which also gives the
trace its temporal locality (the paper's Fig. 4 workload "contains the same
number of repeats and the same amount of temporal locality as the original
log").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..sim import RandomStreams
from .request import Request
from .traces import Trace

__all__ = ["AdlSpec", "generate_adl_trace", "PAPER_ADL"]


@dataclass(frozen=True)
class AdlSpec:
    """Knobs of the synthetic ADL log (defaults = paper calibration)."""

    total_requests: int = 69_337
    cgi_fraction: float = 0.4134

    # hot band
    hot_distinct: int = 200
    hot_draws: int = 3_120
    hot_mean_time: float = 4.57
    hot_sigma: float = 0.8
    hot_zipf: float = 0.9

    # warm band
    warm_distinct: int = 1_500
    warm_draws: int = 6_000
    warm_mean_time: float = 0.35
    warm_sigma: float = 0.6
    warm_zipf: float = 0.8

    # cold band (draws = remaining CGI requests, all distinct)
    cold_mean_time: float = 1.51
    cold_sigma: float = 1.2

    #: CGI output size (bytes), lognormal.
    cgi_mean_output: float = 8_000.0
    cgi_output_sigma: float = 1.0

    # static files
    file_distinct: int = 4_000
    file_zipf: float = 0.9
    file_mean_size: float = 6_000.0
    file_size_sigma: float = 1.3

    #: Fraction of *cold* CGI queries marked uncacheable (authenticated /
    #: per-user output).  Zero keeps Table 1 exactly comparable.
    uncacheable_fraction: float = 0.0

    def scaled(self, factor: float) -> "AdlSpec":
        """A proportionally smaller log (for fast tests and Fig. 4 runs)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

        def s(n: int) -> int:
            return max(1, int(round(n * factor)))

        return AdlSpec(
            total_requests=s(self.total_requests),
            cgi_fraction=self.cgi_fraction,
            hot_distinct=s(self.hot_distinct),
            hot_draws=s(self.hot_draws),
            hot_mean_time=self.hot_mean_time,
            hot_sigma=self.hot_sigma,
            hot_zipf=self.hot_zipf,
            warm_distinct=s(self.warm_distinct),
            warm_draws=s(self.warm_draws),
            warm_mean_time=self.warm_mean_time,
            warm_sigma=self.warm_sigma,
            warm_zipf=self.warm_zipf,
            cold_mean_time=self.cold_mean_time,
            cold_sigma=self.cold_sigma,
            cgi_mean_output=self.cgi_mean_output,
            cgi_output_sigma=self.cgi_output_sigma,
            file_distinct=s(self.file_distinct),
            file_zipf=self.file_zipf,
            file_mean_size=self.file_mean_size,
            file_size_sigma=self.file_size_sigma,
            uncacheable_fraction=self.uncacheable_fraction,
        )

    @property
    def cgi_requests(self) -> int:
        return int(round(self.total_requests * self.cgi_fraction))

    @property
    def cold_draws(self) -> int:
        n = self.cgi_requests - self.hot_draws - self.warm_draws
        if n < 0:
            raise ValueError("hot_draws + warm_draws exceed total CGI requests")
        return n


#: The calibration used for the Table 1 reproduction.
PAPER_ADL = AdlSpec()


def _lognormal_with_mean(rng: np.random.Generator, mean: float, sigma: float, n: int) -> np.ndarray:
    """Lognormal samples with the requested *arithmetic* mean."""
    mu = np.log(mean) - 0.5 * sigma * sigma
    return rng.lognormal(mu, sigma, size=n)


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def generate_adl_trace(spec: AdlSpec = PAPER_ADL, seed: int = 0) -> Trace:
    """Synthesize the log: a shuffled mixture of files + three CGI bands."""
    streams = RandomStreams(seed)
    rng = streams.numpy_stream("adl")

    requests: List[Request] = []

    # --- CGI bands ----------------------------------------------------------
    def band(prefix: str, distinct: int, draws: int, mean_t: float, sigma: float,
             zipf: float) -> None:
        times = _lognormal_with_mean(rng, mean_t, sigma, distinct)
        sizes = np.maximum(
            64, _lognormal_with_mean(rng, spec.cgi_mean_output, spec.cgi_output_sigma, distinct)
        ).astype(int)
        picks = rng.choice(distinct, size=draws, p=_zipf_weights(distinct, zipf))
        for q in picks:
            requests.append(
                Request.cgi(
                    url=f"/cgi-bin/{prefix}?q={q}",
                    cpu_time=float(times[q]),
                    response_size=int(sizes[q]),
                )
            )

    band("hot", spec.hot_distinct, spec.hot_draws, spec.hot_mean_time,
         spec.hot_sigma, spec.hot_zipf)
    band("warm", spec.warm_distinct, spec.warm_draws, spec.warm_mean_time,
         spec.warm_sigma, spec.warm_zipf)

    n_cold = spec.cold_draws
    cold_times = _lognormal_with_mean(rng, spec.cold_mean_time, spec.cold_sigma, n_cold)
    cold_sizes = np.maximum(
        64, _lognormal_with_mean(rng, spec.cgi_mean_output, spec.cgi_output_sigma, n_cold)
    ).astype(int)
    n_uncacheable = int(n_cold * spec.uncacheable_fraction)
    for i in range(n_cold):
        requests.append(
            Request.cgi(
                url=f"/cgi-bin/cold?session={i}",
                cpu_time=float(cold_times[i]),
                response_size=int(cold_sizes[i]),
                cacheable=(i >= n_uncacheable),
            )
        )

    # --- static files -----------------------------------------------------
    n_files = spec.total_requests - spec.cgi_requests
    file_sizes = np.maximum(
        128,
        _lognormal_with_mean(rng, spec.file_mean_size, spec.file_size_sigma,
                             spec.file_distinct),
    ).astype(int)
    picks = rng.choice(
        spec.file_distinct, size=n_files, p=_zipf_weights(spec.file_distinct, spec.file_zipf)
    )
    for f in picks:
        requests.append(Request.file(url=f"/docs/page{f}.html", size=int(file_sizes[f])))

    # --- shuffle into an arrival order ----------------------------------------
    order = rng.permutation(len(requests))
    shuffled = [requests[i] for i in order]
    return Trace(shuffled, name=f"adl-synthetic(seed={seed})")
