"""Access-log analysis (paper §3, Table 1).

Given a trace, compute — for each execution-time threshold — how much
service time an ideal CGI-result cache would have saved, exactly as the
paper's analysis of the Alexandria Digital Library log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .traces import Trace

__all__ = ["ThresholdRow", "analyze_caching_potential", "PAPER_TABLE1_THRESHOLDS"]

#: The thresholds the paper studies (seconds).
PAPER_TABLE1_THRESHOLDS = (0.1, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class ThresholdRow:
    """One row of Table 1."""

    #: Lower execution-time bound for requests included in the row.
    threshold: float
    #: Requests taking longer than the threshold.
    long_requests: int
    #: Requests (among the long ones) that repeat an earlier identical one.
    total_repeats: int
    #: Cache entries needed to exploit all repetition: distinct URLs with >=2
    #: long occurrences.
    unique_repeats: int
    #: Execution time of all repeat occurrences = time an ideal cache saves.
    time_saved: float
    #: ``time_saved`` as a percentage of the *whole* trace's service time.
    saved_percent: float


def analyze_caching_potential(
    trace: Trace,
    thresholds: Sequence[float] = PAPER_TABLE1_THRESHOLDS,
) -> List[ThresholdRow]:
    """Reproduce the paper's Table 1 analysis on ``trace``.

    Only dynamic requests carry execution time in our model, so files (with
    ``cpu_time == 0``) never pass the positive thresholds, matching the
    paper's focus on CGI.
    """
    total_service = trace.total_service_time()
    rows = []
    for threshold in thresholds:
        if threshold < 0:
            raise ValueError(f"negative threshold {threshold}")
        long_reqs = [r for r in trace if r.cpu_time > threshold]
        counts: dict = {}
        for r in long_reqs:
            counts[r.url] = counts.get(r.url, 0) + 1
        total_repeats = sum(c - 1 for c in counts.values())
        unique_repeats = sum(1 for c in counts.values() if c >= 2)
        # Each repeat occurrence would have been a hit, saving its own
        # execution time.  Within a URL all occurrences share cpu_time.
        time_by_url: dict = {}
        for r in long_reqs:
            time_by_url.setdefault(r.url, r.cpu_time)
        time_saved = sum(
            (counts[url] - 1) * time_by_url[url] for url in counts
        )
        saved_percent = 100.0 * time_saved / total_service if total_service else 0.0
        rows.append(
            ThresholdRow(
                threshold=threshold,
                long_requests=len(long_reqs),
                total_repeats=total_repeats,
                unique_repeats=unique_repeats,
                time_saved=time_saved,
                saved_percent=saved_percent,
            )
        )
    return rows
