"""Purpose-built workloads for the paper's overhead and hit-ratio runs."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..sim import RandomStreams
from .request import Request
from .traces import Trace

__all__ = [
    "unique_cgi_trace",
    "uncacheable_cgi_trace",
    "hit_ratio_trace",
    "zipf_cgi_trace",
]


def unique_cgi_trace(
    n_requests: int = 180,
    cpu_time: float = 1.0,
    output_bytes: int = 4_000,
) -> Trace:
    """Every request unique and cacheable — all misses + inserts (Table 3).

    The paper sends 180 requests that each "run for one second on an
    unloaded CPU" to force a miss, insert, and broadcast per request.
    """
    reqs = [
        Request.cgi(
            url=f"/cgi-bin/unique?n={i}", cpu_time=cpu_time, response_size=output_bytes
        )
        for i in range(n_requests)
    ]
    return Trace(reqs, name=f"unique-cgi(n={n_requests})")


def uncacheable_cgi_trace(
    n_requests: int = 180,
    cpu_time: float = 1.0,
    output_bytes: int = 4_000,
) -> Trace:
    """Uncacheable 1-second CGIs (Table 4's foreground work)."""
    reqs = [
        Request.cgi(
            url=f"/cgi-bin/private?n={i}",
            cpu_time=cpu_time,
            response_size=output_bytes,
            cacheable=False,
        )
        for i in range(n_requests)
    ]
    return Trace(reqs, name=f"uncacheable-cgi(n={n_requests})")


def hit_ratio_trace(
    total: int = 1_600,
    unique: int = 1_122,
    seed: int = 0,
    cpu_time_mean: float = 1.0,
    cpu_time_sigma: float = 0.5,
    output_bytes: int = 6_000,
    zipf: float = 1.1,
) -> Trace:
    """The Tables 5/6 workload: ``total`` requests over ``unique`` URLs.

    Constructed exactly: ``unique`` distinct queries, with the ``total -
    unique`` repeat occurrences dealt over a Zipf-skewed subset of them, then
    deterministically shuffled.  The theoretical hit upper bound is thus
    exactly ``total - unique`` (478 for the paper's numbers).
    """
    if unique > total:
        raise ValueError(f"unique ({unique}) cannot exceed total ({total})")
    if unique < 1:
        raise ValueError("need at least one unique request")
    rng = RandomStreams(seed).numpy_stream("hit-ratio")

    times = np.maximum(
        0.05,
        rng.lognormal(
            np.log(cpu_time_mean) - 0.5 * cpu_time_sigma**2, cpu_time_sigma, unique
        ),
    )
    base = [
        Request.cgi(
            url=f"/cgi-bin/adl?item={i}",
            cpu_time=float(times[i]),
            response_size=output_bytes,
        )
        for i in range(unique)
    ]

    # Deal the repeats over the unique queries with Zipf skew.
    extra = total - unique
    ranks = np.arange(1, unique + 1, dtype=float)
    weights = ranks ** (-zipf)
    weights /= weights.sum()
    picks = rng.choice(unique, size=extra, p=weights)

    requests: List[Request] = list(base) + [base[i] for i in picks]
    order = rng.permutation(total)
    return Trace(
        [requests[i] for i in order],
        name=f"hit-ratio(total={total},unique={unique},seed={seed})",
    )


def zipf_cgi_trace(
    n_requests: int,
    n_distinct: int,
    zipf: float = 1.0,
    cpu_time_mean: float = 1.0,
    cpu_time_sigma: float = 0.6,
    output_bytes: int = 6_000,
    seed: int = 0,
    url_prefix: str = "/cgi-bin/zipf",
) -> Trace:
    """Generic Zipf-popularity CGI workload (ablations, examples)."""
    if n_distinct < 1:
        raise ValueError("need at least one distinct request")
    rng = RandomStreams(seed).numpy_stream("zipf-cgi")
    times = np.maximum(
        0.01,
        rng.lognormal(
            np.log(cpu_time_mean) - 0.5 * cpu_time_sigma**2, cpu_time_sigma, n_distinct
        ),
    )
    ranks = np.arange(1, n_distinct + 1, dtype=float)
    weights = ranks ** (-zipf)
    weights /= weights.sum()
    picks = rng.choice(n_distinct, size=n_requests, p=weights)
    reqs = [
        Request.cgi(
            url=f"{url_prefix}?q={q}",
            cpu_time=float(times[q]),
            response_size=output_bytes,
        )
        for q in picks
    ]
    return Trace(reqs, name=f"zipf-cgi(n={n_requests},d={n_distinct},s={zipf})")
