"""Request traces: ordered request sequences with repeat-structure queries."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .request import Request, RequestKind

__all__ = ["Trace"]


class Trace:
    """An ordered sequence of requests (an access log without timestamps).

    Provides the repeat-structure statistics the paper's analyses are built
    on: unique counts, theoretical hit upper bounds, and service-time
    aggregates.
    """

    def __init__(self, requests: Iterable[Request], name: str = ""):
        self.requests: List[Request] = list(requests)
        self.name = name

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, idx):
        return self.requests[idx]

    # -- composition ----------------------------------------------------------
    def filter(self, predicate) -> "Trace":
        return Trace([r for r in self.requests if predicate(r)], name=self.name)

    def cgi_only(self) -> "Trace":
        return self.filter(lambda r: r.is_cgi)

    def files_only(self) -> "Trace":
        return self.filter(lambda r: r.kind is RequestKind.FILE)

    def cacheable_only(self) -> "Trace":
        return self.filter(lambda r: r.is_cgi and r.cacheable)

    # -- statistics -------------------------------------------------------------
    def url_counts(self) -> Counter:
        return Counter(r.url for r in self.requests)

    @property
    def unique_count(self) -> int:
        return len({r.url for r in self.requests})

    @property
    def repeat_count(self) -> int:
        """Requests that are a repeat of an earlier identical request."""
        return len(self.requests) - self.unique_count

    def max_possible_hits(self) -> int:
        """Upper bound on cache hits with an infinite, pre-coordinated cache
        (every occurrence after the first hits)."""
        return self.repeat_count

    def total_service_time(self) -> float:
        """Sum of per-request standalone execution time (cpu_time for CGI)."""
        return sum(r.cpu_time for r in self.requests)

    def mean_cpu_time(self) -> float:
        if not self.requests:
            return 0.0
        return self.total_service_time() / len(self.requests)

    def by_url(self) -> Dict[str, List[Request]]:
        groups: Dict[str, List[Request]] = {}
        for r in self.requests:
            groups.setdefault(r.url, []).append(r)
        return groups

    def interleave(self, other: "Trace") -> "Trace":
        """Round-robin merge (used to build multi-client workloads)."""
        merged: List[Request] = []
        a, b = self.requests, other.requests
        for i in range(max(len(a), len(b))):
            if i < len(a):
                merged.append(a[i])
            if i < len(b):
                merged.append(b[i])
        return Trace(merged, name=f"{self.name}+{other.name}")

    def split(self, n: int) -> List["Trace"]:
        """Deal requests round-robin into ``n`` sub-traces (client threads)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        parts: List[List[Request]] = [[] for _ in range(n)]
        for i, r in enumerate(self.requests):
            parts[i % n].append(r)
        return [Trace(p, name=f"{self.name}[{i}]") for i, p in enumerate(parts)]

    def __repr__(self) -> str:
        return (
            f"<Trace {self.name!r} n={len(self.requests)} "
            f"unique={self.unique_count}>"
        )
