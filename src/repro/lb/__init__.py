"""Front-end load balancing for the server cluster."""

from .balancer import BALANCER_POLICIES, LOAD_REPORT_PORT, LoadBalancer

__all__ = ["LoadBalancer", "BALANCER_POLICIES", "LOAD_REPORT_PORT"]
