"""Front-end request dispatcher for the server cluster.

The paper positions Swala alongside load-balancing multi-node servers
(SWEB [2], Dias et al. [7]); its own experiments pin client threads to
nodes.  This module adds the dispatcher those systems use, so routing
policy becomes an experimental variable:

* ``round_robin``   — classic rotation;
* ``random``        — uniform random backend;
* ``least_loaded``  — pick the backend with the lowest recently-reported
  CPU load (backends heartbeat their run-queue length, as SWEB's
  load-information module did);
* ``url_hash``      — hash the request URL to a backend: cache-affinity
  routing, which sends every repeat of a query to the same node (the idea
  later made famous as LARD).

The dispatcher relays the accepted connection to the backend and the
backend answers the *client* directly (TCP handoff / redirect semantics,
as in SWEB), so response bodies do not flow through the front end twice.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from ..core.protocol import HTTP_REQUEST_BYTES, HttpConnection
from ..hosts import Machine
from ..net import Network
from ..servers.base import HTTP_PORT
from ..sim import Simulator, Store

__all__ = ["LoadBalancer", "BALANCER_POLICIES", "LOAD_REPORT_PORT"]

BALANCER_POLICIES = ("round_robin", "random", "least_loaded", "url_hash")

#: Port on the balancer where backends report their load.
LOAD_REPORT_PORT = "lb-load"
#: Size of one heartbeat message.
LOAD_REPORT_BYTES = 60
#: CPU cost of accepting + relaying one connection on the front end.
FORWARD_CPU = 0.0004


def _stable_hash(url: str) -> int:
    """Deterministic across runs/processes (unlike built-in ``hash``)."""
    return int.from_bytes(hashlib.md5(url.encode()).digest()[:4], "little")


class LoadBalancer:
    """A dispatcher node in front of ``backends``."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        network: Network,
        backends: Sequence[str],
        policy: str = "round_robin",
        name: Optional[str] = None,
        heartbeat_interval: float = 0.5,
        rng_seed: int = 0,
    ):
        if policy not in BALANCER_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {BALANCER_POLICIES}"
            )
        if not backends:
            raise ValueError("need at least one backend")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.sim = sim
        self.machine = machine
        self.network = network
        self.backends = list(backends)
        self.policy = policy
        self.name = name or machine.name
        self.heartbeat_interval = heartbeat_interval
        self.listen_box: Store = network.register(self.name, HTTP_PORT)
        self._load_box: Store = network.register(self.name, LOAD_REPORT_PORT)
        self._rr = 0
        import random as _random

        self._rng = _random.Random(rng_seed)
        #: Latest reported load per backend (run-queue length).
        self.reported_load: Dict[str, float] = {b: 0.0 for b in self.backends}
        self.forwarded = 0
        self.per_backend: Dict[str, int] = {b: 0 for b in self.backends}
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        self.sim.process(self._dispatch_loop(), name=f"{self.name}.dispatch")
        if self.policy == "least_loaded":
            self.sim.process(self._load_receiver(), name=f"{self.name}.load")

    def attach_heartbeats(self, servers) -> None:
        """Spawn a heartbeat process on every backend server (reports its
        machine's CPU run-queue length to this balancer)."""
        for server in servers:
            self.sim.process(
                self._heartbeat(server), name=f"{server.name}.heartbeat"
            )

    # -- routing --------------------------------------------------------------
    def choose(self, conn: HttpConnection) -> str:
        if self.policy == "round_robin":
            backend = self.backends[self._rr % len(self.backends)]
            self._rr += 1
            return backend
        if self.policy == "random":
            return self._rng.choice(self.backends)
        if self.policy == "url_hash":
            return self.backends[_stable_hash(conn.request.url) % len(self.backends)]
        # least_loaded
        return min(
            self.backends, key=lambda b: (self.reported_load[b], b)
        )

    # -- daemons ------------------------------------------------------------
    def _dispatch_loop(self):
        while True:
            msg = yield self.listen_box.get()
            conn: HttpConnection = msg.payload
            yield self.machine.compute(FORWARD_CPU)
            backend = self.choose(conn)
            self.forwarded += 1
            self.per_backend[backend] += 1
            # Relay the connection; the backend replies to the client
            # directly (handoff semantics).
            self.network.send(
                self.name, backend, HTTP_PORT, conn, HTTP_REQUEST_BYTES
            )

    def _load_receiver(self):
        while True:
            msg = yield self._load_box.get()
            backend, load = msg.payload
            if backend in self.reported_load:
                self.reported_load[backend] = load

    def _heartbeat(self, server):
        while True:
            yield self.sim.timeout(self.heartbeat_interval)
            self.network.send(
                server.name,
                self.name,
                LOAD_REPORT_PORT,
                (server.name, float(server.machine.cpu.load)),
                LOAD_REPORT_BYTES,
            )

    def __repr__(self) -> str:
        return (
            f"<LoadBalancer {self.name!r} policy={self.policy} "
            f"forwarded={self.forwarded}>"
        )
