"""Tables 5 & 6 — stand-alone vs. cooperative cache hit ratios (§5.3).

1,600 requests (1,122 unique) are issued to clusters of 1..8 nodes, with
each node caching in stand-alone or cooperative mode.  The theoretical hit
upper bound is 478 (every repeat).  Table 5 uses per-node cache size 2000
(everything fits: cooperative wins purely by sharing), Table 6 size 20
(severe overflow: cooperative also wins by aggregating capacity).

Paper shape: cooperative is near-optimal at size 2000 (97.5–99.4% of the
bound) while stand-alone degrades as nodes are added; at size 20
cooperative *rises* with node count (28.7% → 73.6%) while stand-alone
stays below ~40%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import CacheMode
from ..hosts import MachineCosts
from ..metrics import HitRatioSummary, hit_ratio_summary, render_table
from ..workload import Trace, hit_ratio_trace
from .common import run_cluster_trace
from .parallel import fanout

__all__ = [
    "HitRatioRow",
    "run_hit_ratio_experiment",
    "run_table5",
    "run_table6",
    "render_hit_ratio_table",
]


@dataclass(frozen=True)
class HitRatioRow:
    nodes: int
    standalone: Optional[HitRatioSummary]  # None for 1 node in Table 5 (N/A)
    cooperative: HitRatioSummary


def _hit_ratio_cell(
    nodes: int,
    cache_size: int,
    total: int,
    unique: int,
    seed: int,
    policy: str,
    n_threads: int,
    costs: Optional[MachineCosts],
) -> HitRatioRow:
    """One node-count data point (stand-alone + cooperative pair).  The
    trace is regenerated from the seed, so parallel workers replay the
    identical request stream."""
    trace = hit_ratio_trace(total=total, unique=unique, seed=seed)
    config_kw = dict(cache_capacity=cache_size, policy=policy)
    _, sa_cluster = run_cluster_trace(
        nodes, CacheMode.STANDALONE, trace, n_threads, config_kw=config_kw,
        costs=costs,
    )
    _, co_cluster = run_cluster_trace(
        nodes, CacheMode.COOPERATIVE, trace, n_threads, config_kw=config_kw,
        costs=costs,
    )
    return HitRatioRow(
        nodes=nodes,
        standalone=hit_ratio_summary(sa_cluster.stats(), trace, nodes),
        cooperative=hit_ratio_summary(co_cluster.stats(), trace, nodes),
    )


def run_hit_ratio_experiment(
    cache_size: int,
    node_counts: Sequence[int] = (1, 2, 4, 6, 8),
    total: int = 1_600,
    unique: int = 1_122,
    seed: int = 0,
    policy: str = "lru",
    n_threads: int = 16,
    costs: Optional[MachineCosts] = None,
    jobs: Optional[int] = None,
) -> List[HitRatioRow]:
    cells = [
        dict(
            nodes=n,
            cache_size=cache_size,
            total=total,
            unique=unique,
            seed=seed,
            policy=policy,
            n_threads=n_threads,
            costs=costs,
        )
        for n in node_counts
    ]
    return fanout(_hit_ratio_cell, cells, jobs=jobs)


def run_table5(**kw) -> List[HitRatioRow]:
    """Cache size 2000: every node could hold the whole working set."""
    return run_hit_ratio_experiment(cache_size=2_000, **kw)


def run_table6(**kw) -> List[HitRatioRow]:
    """Cache size 20: severe overflow and continual replacement."""
    return run_hit_ratio_experiment(cache_size=20, **kw)


def render_hit_ratio_table(rows: List[HitRatioRow], cache_size: int) -> str:
    bound = rows[0].cooperative.upper_bound
    table_no = 5 if cache_size >= 1000 else 6
    return render_table(
        f"Table {table_no}: cache hits vs upper bound ({bound}), "
        f"cache size {cache_size}",
        [
            "# nodes",
            "standalone hits",
            "coop hits",
            "standalone %",
            "coop %",
            "coop remote hits",
            "false misses",
        ],
        [
            (
                r.nodes,
                r.standalone.hits if r.standalone else "N/A",
                r.cooperative.hits,
                (
                    f"{r.standalone.percent_of_upper_bound:.1f}%"
                    if r.standalone
                    else "N/A"
                ),
                f"{r.cooperative.percent_of_upper_bound:.1f}%",
                r.cooperative.remote_hits,
                r.cooperative.false_misses,
            )
            for r in rows
        ],
        note="paper (size 2000): coop 97.5-99.4%, standalone degrades with "
        "nodes; (size 20): coop 28.7->73.6% rising with nodes, standalone <40%",
    )
