"""Table 1 — potential time saving by caching CGI results (paper §3).

Paper numbers for the 1-second threshold row: 189 cache entries needed,
2,899 repeats (= would-be hits), 13,241 s saved, ~29% of total service
time.  We regenerate the analysis over the calibrated synthetic ADL log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..metrics import render_table
from ..workload import (
    PAPER_ADL,
    PAPER_TABLE1_THRESHOLDS,
    AdlSpec,
    ThresholdRow,
    analyze_caching_potential,
    generate_adl_trace,
)

__all__ = ["Table1Result", "run_table1", "render_table1", "PAPER_1S_ROW"]

#: The surviving paper row (threshold, total repeats, unique entries,
#: seconds saved, percent saved).
PAPER_1S_ROW = dict(
    threshold=1.0, total_repeats=2899, unique_repeats=189,
    time_saved=13241.0, saved_percent=28.7,
)


@dataclass
class Table1Result:
    rows: List[ThresholdRow]
    total_requests: int
    cgi_requests: int
    total_service_time: float
    mean_cgi_time: float
    mean_response_time_proxy: float


def run_table1(
    spec: AdlSpec = PAPER_ADL,
    seed: int = 0,
    thresholds: Sequence[float] = PAPER_TABLE1_THRESHOLDS,
) -> Table1Result:
    trace = generate_adl_trace(spec, seed=seed)
    cgi = trace.cgi_only()
    rows = analyze_caching_potential(trace, thresholds)
    return Table1Result(
        rows=rows,
        total_requests=len(trace),
        cgi_requests=len(cgi),
        total_service_time=trace.total_service_time(),
        mean_cgi_time=cgi.mean_cpu_time(),
        mean_response_time_proxy=trace.total_service_time() / len(trace),
    )


def render_table1(result: Table1Result) -> str:
    return render_table(
        "Table 1: potential time saving by caching CGI",
        ["threshold (s)", "# long", "# repeats", "# uniq repeats", "saved (s)", "saved %"],
        [
            (
                r.threshold,
                r.long_requests,
                r.total_repeats,
                r.unique_repeats,
                r.time_saved,
                r.saved_percent,
            )
            for r in result.rows
        ],
        note=(
            f"{result.total_requests} requests, {result.cgi_requests} CGI, "
            f"total service {result.total_service_time:,.0f}s, "
            f"mean CGI {result.mean_cgi_time:.2f}s "
            f"(paper 1s row: {PAPER_1S_ROW['unique_repeats']} entries, "
            f"{PAPER_1S_ROW['total_repeats']} hits, "
            f"{PAPER_1S_ROW['time_saved']:,.0f}s, ~{PAPER_1S_ROW['saved_percent']}%)"
        ),
    )
