"""Partitioned (conservative parallel) execution of cluster fleet runs.

:func:`run_partitioned_fleet` is the intra-run parallel twin of
:func:`~repro.experiments.common.run_cluster_trace`: the same cluster,
fleet, and workload, but the hosts are partitioned over shards — each a
full :class:`~repro.sim.Simulator` — synchronized by the conservative
windowed coordinator in :mod:`repro.sim.pdes` with the LAN latency as
lookahead.

Partition layout: server node ``i`` lives on shard ``i % n_shards``;
client host ``h`` (which carries *all* the client threads pinned to it,
since they share a NIC) lives on shard ``h % n_shards``.  Every
cross-shard interaction is then a network message with at least one
latency of lookahead, which is exactly what the conservative protocol
needs.  Build order inside each shard mirrors the serial build (servers
in node order, then client threads in fleet order), so per-host behavior
is reproduced exactly; the serial-equals-parallel gates compare whole
table outputs to prove it.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, List, Optional

from ..clients import ClientThread
from ..core import SwalaCluster, SwalaConfig
from ..core.stats import ClusterStats
from ..net import DEFAULT_LATENCY, Network
from ..obs import runtime as obs_runtime
from ..sim import AllOf, Simulator, Tally
from ..sim.pdes import (
    ConservativeCoordinator,
    InlineShard,
    ProcessShard,
    Router,
    ShardSpec,
    resolve_backend,
)

__all__ = ["build_fleet_shard", "run_partitioned_fleet", "PartitionedClusterResult"]


def _client_hosts(n_hosts: int, host_prefix: str) -> List[str]:
    return [f"{host_prefix}{h}" for h in range(n_hosts)]


def build_fleet_shard(
    shard: int,
    n_shards: int,
    n_nodes: int,
    config: SwalaConfig,
    trace,
    n_threads: int,
    n_hosts: int,
    costs=None,
    think_time: float = 0.0,
    install: bool = True,
    host_prefix: str = "wsclient",
    obs_spec=None,
) -> ShardSpec:
    """Build shard ``shard`` of the partitioned fleet run.

    Top-level and driven purely by picklable arguments so the process
    backend can run it inside a worker.  Every shard derives the same
    global layout (node names, host list, trace split) and keeps only
    its own slice.

    ``obs_spec`` (an :class:`~repro.experiments.common.ObserverSpec`)
    asks for a shard-local observer: the shard builds its own collectors
    from the spec, attaches them to its slice of the cluster, and ships
    their snapshots back inside the finalize payload (under ``"obs"``)
    for the parent to merge.  The ambient process-global observer is
    deliberately shadowed during the build — with the inline backend the
    parent's live observer would otherwise attach itself to every shard.
    """
    sim = Simulator()
    network = Network(sim)
    if network.latency <= 0:
        raise ValueError("partitioned runs need positive LAN latency")

    local_nodes = [i for i in range(n_nodes) if i % n_shards == shard]
    local_hosts_c = [
        h for h in range(n_hosts) if h % n_shards == shard
    ]
    node_names = [f"swala{i}" for i in range(n_nodes)]
    client_hosts = _client_hosts(n_hosts, host_prefix)
    local_hosts = [node_names[i] for i in local_nodes] + [
        client_hosts[h] for h in local_hosts_c
    ]
    all_hosts = node_names + client_hosts
    router = Router(
        local_hosts, [h for h in all_hosts if h not in set(local_hosts)]
    )
    network.router = router

    cluster = None
    if local_nodes:
        cluster = SwalaCluster(
            sim, n_nodes, config, network=network, costs=costs,
            nodes=local_nodes,
        )
        if install:
            cluster.install_files(trace)

    parts = trace.split(n_threads)
    # Thread names must share the serial fleet's ``client...`` family:
    # resource probes aggregate provenance by process-name family, so a
    # different prefix would drift an observed profile export.
    threads = [
        (i, ClientThread(
            sim=sim,
            network=network,
            host=client_hosts[i % n_hosts],
            server=node_names[i % n_nodes],
            requests=parts[i],
            think_time=think_time,
            name=f"client{i}",
        ))
        for i in range(n_threads)
        if (i % n_hosts) % n_shards == shard
    ]

    observer = obs_spec.build() if obs_spec is not None else None
    with obs_runtime.observing(observer):
        if cluster is not None:
            cluster.start()
        procs = [t.start() for _, t in threads]
    terminal = AllOf(sim, procs) if procs else None

    def finalize(horizon: Optional[float] = None) -> Dict[str, Any]:
        return {
            "obs": (
                observer.shard_snapshot(horizon)
                if observer is not None else None
            ),
            "threads": [(i, t.response_times) for i, t in threads],
            "stats": [
                (i, server.stats)
                for i, server in zip(local_nodes, cluster.servers)
            ] if cluster is not None else [],
            "cached": [
                (i, len(server.cacher.store))
                for i, server in zip(local_nodes, cluster.servers)
            ] if cluster is not None else [],
            "lock_waits": [
                (i, server.cacher.directory.total_lock_waits())
                for i, server in zip(local_nodes, cluster.servers)
            ] if cluster is not None else [],
            "network": (
                network.messages_sent,
                network.messages_dropped,
                network.bytes_sent,
                network.transit_times,
                network.port_traffic,
            ),
        }

    return ShardSpec(
        sim=sim,
        network=network,
        router=router,
        hosts=local_hosts,
        terminal=terminal,
        finalize=finalize,
    )


class PartitionedClusterResult:
    """Duck-typed stand-in for :class:`~repro.core.SwalaCluster` results.

    Exposes what experiment code reads off the cluster after a run —
    ``stats()``, ``total_cached_entries()``, ``node_names``, ``servers``
    (as lightweight views carrying per-node stats and directory lock
    waits), and merged ``network`` counters — assembled from the shards'
    finalized, picklable summaries.
    """

    def __init__(self, n_nodes: int, n_shards: int, backend: str,
                 rounds: int, summaries: List[dict]):
        self.node_names = [f"swala{i}" for i in range(n_nodes)]
        self.n_shards = n_shards
        self.backend = backend
        self.rounds = rounds
        #: Per-shard observer snapshots (shard-id order) and the global
        #: terminal time; filled in by :func:`run_partitioned_fleet`.
        self.obs_snapshots: List[Optional[dict]] = []
        self.terminal_time: Optional[float] = None
        by_node: Dict[int, Any] = {}
        cached: Dict[int, int] = {}
        waits: Dict[int, float] = {}
        messages_sent = dropped = bytes_sent = 0
        transit = Tally("lan.transit", keep_samples=False)
        port_traffic: Dict[str, List[int]] = {}
        self._threads: List[tuple] = []
        for summary in summaries:
            self._threads.extend(summary["threads"])
            for i, stats in summary["stats"]:
                by_node[i] = stats
            for i, n in summary["cached"]:
                cached[i] = n
            for i, w in summary["lock_waits"]:
                waits[i] = w
            sent, drop, nbytes, tally, ports = summary["network"]
            messages_sent += sent
            dropped += drop
            bytes_sent += nbytes
            transit.merge(tally)
            for port, (n_msgs, n_bytes) in ports.items():
                entry = port_traffic.setdefault(port, [0, 0])
                entry[0] += n_msgs
                entry[1] += n_bytes
        self._node_stats = [by_node[i] for i in sorted(by_node)]
        self._cached = sum(cached.values())
        self.network = SimpleNamespace(
            name="lan",
            messages_sent=messages_sent,
            messages_dropped=dropped,
            bytes_sent=bytes_sent,
            transit_times=transit,
            port_traffic=port_traffic,
        )
        self.servers = [
            SimpleNamespace(
                stats=stats,
                cacher=SimpleNamespace(
                    directory=SimpleNamespace(
                        total_lock_waits=lambda w=waits.get(i, 0.0): w
                    )
                ),
            )
            for i, stats in zip(sorted(by_node), self._node_stats)
        ]

    def __len__(self) -> int:
        return len(self.node_names)

    def stats(self) -> ClusterStats:
        return ClusterStats.aggregate(self._node_stats)

    def total_cached_entries(self) -> int:
        return self._cached

    def merged_response_times(self) -> Tally:
        merged = Tally("fleet.rt")
        for _, tally in sorted(self._threads, key=lambda item: item[0]):
            merged.merge(tally)
        return merged

    def __repr__(self) -> str:
        return (
            f"<PartitionedClusterResult n={len(self.node_names)} "
            f"shards={self.n_shards} backend={self.backend!r}>"
        )


def run_partitioned_fleet(
    n_nodes: int,
    config: SwalaConfig,
    trace,
    n_threads: int = 16,
    n_hosts: int = 2,
    costs=None,
    think_time: float = 0.0,
    install: bool = True,
    n_shards: int = 2,
    backend: str = "auto",
    obs_spec=None,
    host_prefix: str = "wsclient",
):
    """Partitioned twin of ``run_cluster_trace``: returns ``(times, view)``.

    ``n_shards`` is clamped to the node count (an empty shard would add
    synchronization cost for nothing).  Backend ``auto`` resolves per
    machine (see :func:`repro.sim.pdes.resolve_backend`).

    With ``obs_spec`` set, each shard runs its own collectors; the view
    carries the raw per-shard snapshots as ``view.obs_snapshots`` (in
    shard-id order) plus the coordinator's global terminal time as
    ``view.terminal_time`` — the caller folds them into its live
    observer with :meth:`RunObserver.merge_shard_snapshots`.
    """
    if n_nodes < 2:
        raise ValueError("partitioned runs need at least 2 nodes")
    n_shards = max(2, min(n_shards, n_nodes))
    backend = resolve_backend(backend, n_shards)
    kwargs = dict(
        n_shards=n_shards,
        n_nodes=n_nodes,
        config=config,
        trace=trace,
        n_threads=n_threads,
        n_hosts=n_hosts,
        costs=costs,
        think_time=think_time,
        install=install,
        obs_spec=obs_spec,
        host_prefix=host_prefix,
    )
    if backend == "process":
        shards = [
            ProcessShard(build_fleet_shard, dict(kwargs, shard=s))
            for s in range(n_shards)
        ]
    else:
        shards = [
            InlineShard(build_fleet_shard(shard=s, **kwargs))
            for s in range(n_shards)
        ]
    coordinator = ConservativeCoordinator(shards, lookahead=DEFAULT_LATENCY)
    try:
        coordinator.run()
        summaries = coordinator.finalize()
    finally:
        coordinator.stop()
    obs_snapshots = [summary.pop("obs", None) for summary in summaries]
    view = PartitionedClusterResult(
        n_nodes, n_shards, backend, coordinator.rounds, summaries
    )
    view.obs_snapshots = obs_snapshots
    view.terminal_time = coordinator.terminal_time
    return view.merged_response_times(), view
