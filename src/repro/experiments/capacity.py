"""`repro capacity`: SLO-driven saturation search for the knee rate.

ROADMAP item 4 asks the operator question the paper's §5 throughput
tables answer by hand: *what is the max sustainable req/sec per cluster
size?*  This module automates it with the streaming-telemetry saturation
detector (:mod:`repro.obs.streaming`):

1. **Geometric ramp** — one simulation per cluster size in which an
   :class:`~repro.clients.AdaptiveSource` doubles its Poisson arrival
   rate every hold period until the detector fires, bracketing the knee
   within a factor of ``growth``.
2. **Bisection** — fresh fixed-rate probe runs (deterministic
   :class:`~repro.clients.OpenLoopSource` replays) shrink the bracket
   geometrically until ``hi/lo - 1 <= precision``.  The arrival stream
   uses common random numbers across rates (same uniform draws, scaled),
   so probes differ only in offered load.
3. **Knee annotation** — the winning rate is re-probed with a
   :class:`~repro.obs.ResourceProfiler` attached, and the most saturated
   resource (same ranking ``repro profile`` uses) is reported as the
   bottleneck at the knee.

Every step is a deterministic function of (params, seed): the committed
``results/capacity_knee.{json,txt}`` regenerate byte-identically.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..clients import AdaptiveSource, OpenLoopSource
from ..core import CacheMode, SwalaCluster, SwalaConfig
from ..hosts import MachineCosts
from ..metrics import render_table
from ..obs.ioutil import write_text
from ..obs.profiler import ResourceProfiler, _entries, _saturation
from ..obs.streaming import SLO, StreamingTelemetry
from ..sim import RandomStreams, Simulator
from ..workload import TimedRequest, zipf_cgi_trace

__all__ = [
    "CapacityParams",
    "ProbeResult",
    "KneeCell",
    "probe_rate",
    "find_knee",
    "run_capacity_search",
    "knee_report",
    "render_knee_table",
    "write_knee_report",
]


@dataclass(frozen=True)
class CapacityParams:
    """Everything the search depends on (all of it goes in the export)."""

    nodes: Tuple[int, ...] = (1, 4, 8, 16)
    mode: str = "cooperative"
    window: float = 1.0              # telemetry window width, sim-seconds
    duration: float = 20.0           # offered-load phase per probe
    start_rate: float = 4.0          # ramp origin, req/s
    max_rate: float = 4096.0         # ramp gives up above this
    growth: float = 2.0              # ramp multiplier per hold
    precision: float = 0.05          # bisection stops at hi/lo-1 <= this
    max_probes: int = 12             # bisection cap per cluster size
    slo_p99: float = 2.0             # windowed p99 bound, seconds
    max_rho: float = 1.0             # Little's-law utilisation bound
    queue_growth_frac: float = 0.25  # backlog growth per window, as a
    #                                  fraction of that window's expected
    #                                  arrivals at the probed rate
    consecutive: int = 3
    warmup_windows: int = 2
    n_distinct: int = 200
    zipf: float = 1.0
    cpu_time_mean: float = 0.2
    seed: int = 0
    max_requests: int = 200_000      # per-probe arrival cap

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["nodes"] = list(self.nodes)
        return out


@dataclass
class ProbeResult:
    """One fixed-rate (or ramp) run judged by the saturation detector."""

    rate: float
    saturated: bool
    saturated_window: Optional[int]
    windows: List[Dict[str, Any]]
    sent: int
    completed: int
    mean_rt: float
    p99_rt: float
    hit_ratio: float
    telemetry: StreamingTelemetry = field(repr=False, default=None)


@dataclass
class KneeCell:
    """The capacity verdict for one cluster size."""

    nodes: int
    knee: float                      # max sustainable arrival rate, req/s
    bracket_lo: float
    bracket_hi: Optional[float]      # None => never saturated by max_rate
    probes: int                      # fixed-rate probe runs spent
    hit_ratio: float                 # at the knee
    mean_rt: float
    p99_rt: float
    bottleneck: Dict[str, Any]       # profiler's top saturated resource

    def to_dict(self) -> Dict[str, Any]:
        return {
            "nodes": self.nodes,
            "knee": self.knee,
            "knee_per_node": self.knee / self.nodes,
            "bracket_lo": self.bracket_lo,
            "bracket_hi": self.bracket_hi,
            "probes": self.probes,
            "hit_ratio": self.hit_ratio,
            "mean_rt": self.mean_rt,
            "p99_rt": self.p99_rt,
            "bottleneck": self.bottleneck,
        }


def _slo(params: CapacityParams, rate: float) -> SLO:
    return SLO(
        p99_latency=params.slo_p99,
        max_rho=params.max_rho,
        max_queue_growth=params.queue_growth_frac * rate * params.window,
        consecutive=params.consecutive,
        warmup_windows=params.warmup_windows,
    )


def _population(params: CapacityParams):
    """A Zipf-mixed CGI request pool to cycle arrivals through."""
    return zipf_cgi_trace(
        4 * params.n_distinct,
        params.n_distinct,
        zipf=params.zipf,
        cpu_time_mean=params.cpu_time_mean,
        seed=params.seed,
    )


def _timed_arrivals(
    population, rate: float, params: CapacityParams
) -> List[TimedRequest]:
    """Poisson arrivals over the load phase, cycling the request pool.

    One uniform stream drives every rate (inter-arrival gaps scale by
    ``1/rate``), so bisection probes see the same arrival *pattern* at
    different intensities — common random numbers keep the saturated
    predicate monotone in rate.
    """
    rng = RandomStreams(params.seed).stream("capacity-arrivals")
    timed: List[TimedRequest] = []
    t = 0.0
    i = 0
    while len(timed) < params.max_requests:
        t += rng.expovariate(rate)
        if t >= params.duration:
            break
        timed.append(
            TimedRequest(time=t, request=population[i % len(population)])
        )
        i += 1
    return timed


def _build_cluster(sim: Simulator, n_nodes: int, params: CapacityParams,
                   costs: Optional[MachineCosts]):
    cluster = SwalaCluster(
        sim, n_nodes, SwalaConfig(mode=CacheMode(params.mode)), costs=costs
    )
    cluster.start()
    return cluster


def probe_rate(
    n_nodes: int,
    rate: float,
    params: CapacityParams,
    costs: Optional[MachineCosts] = None,
    profiler: Optional[ResourceProfiler] = None,
) -> ProbeResult:
    """One fixed-rate open-loop run, judged by the saturation detector."""
    population = _population(params)
    timed = _timed_arrivals(population, rate, params)
    sim = Simulator()
    cluster = _build_cluster(sim, n_nodes, params, costs)
    telemetry = StreamingTelemetry(window=params.window,
                                   slo=_slo(params, rate))
    cluster.attach_streaming(telemetry)
    if profiler is not None:
        profiler.new_run()
        cluster.attach_profiler(profiler)
    source = OpenLoopSource(
        sim, cluster.network, "frontdoor", cluster.node_names, timed
    )
    source.telemetry = telemetry
    sim.run(until=source.start())
    telemetry.finalize()
    if profiler is not None:
        profiler.finalize()
    summary = telemetry.summary_digest()
    return ProbeResult(
        rate=rate,
        saturated=telemetry.saturated,
        saturated_window=telemetry.saturated_window,
        windows=[w.to_dict() for w in telemetry.windows],
        sent=len(timed),
        completed=source.response_times.count,
        mean_rt=source.response_times.mean,
        p99_rt=summary.quantile(0.99),
        hit_ratio=cluster.stats().hit_ratio,
        telemetry=telemetry,
    )


def _ramp(
    n_nodes: int,
    params: CapacityParams,
    costs: Optional[MachineCosts] = None,
) -> Tuple[float, Optional[float], List[Dict[str, Any]]]:
    """Geometric ramp: double the rate each hold until the detector fires.

    Returns ``(lo, hi, windows)`` — the last rate that survived a full
    hold and the first that saturated (``hi is None`` when even
    ``max_rate`` survived).  Cache state carries across steps (warm, like
    a real cluster under rising load), which biases the bracket slightly
    conservative; bisection refines with clean runs.
    """
    population = _population(params)
    sim = Simulator()
    cluster = _build_cluster(sim, n_nodes, params, costs)
    telemetry = StreamingTelemetry(window=params.window,
                                   slo=_slo(params, params.start_rate))
    cluster.attach_streaming(telemetry)
    source = AdaptiveSource(
        sim, cluster.network, "frontdoor", cluster.node_names,
        population, rate=params.start_rate, seed=params.seed + 1,
        name="capacity-ramp",
    )
    source.telemetry = telemetry
    hold = (params.warmup_windows + params.consecutive + 1) * params.window
    bracket: List[Optional[float]] = [0.0, None]

    def controller():
        rate = params.start_rate
        while True:
            yield sim.timeout(hold)
            telemetry.advance(sim.now)
            if telemetry.saturated:
                bracket[1] = rate
                return
            bracket[0] = rate
            rate *= params.growth
            if rate > params.max_rate:
                return
            telemetry.reset_saturation()
            telemetry.slo = _slo(params, rate)
            source.retarget(rate)

    source.start()
    proc = sim.process(controller(), name="capacity-ramp")
    sim.run(until=proc)
    source.stop()
    telemetry.finalize()
    return bracket[0], bracket[1], [w.to_dict() for w in telemetry.windows]


def find_knee(
    n_nodes: int,
    params: CapacityParams,
    costs: Optional[MachineCosts] = None,
    collect_windows: Optional[List[Dict[str, Any]]] = None,
) -> KneeCell:
    """Ramp + bisection + profiled annotation for one cluster size."""

    def _tag(records: List[Dict[str, Any]], phase: str, rate: float) -> None:
        if collect_windows is None:
            return
        for record in records:
            tagged = dict(record)
            tagged["cell"] = n_nodes
            tagged["phase"] = phase
            tagged["rate"] = rate
            collect_windows.append(tagged)

    lo, hi, ramp_windows = _ramp(n_nodes, params, costs)
    _tag(ramp_windows, "ramp", hi if hi is not None else params.max_rate)
    probes = 0

    def _probe(rate: float) -> ProbeResult:
        nonlocal probes
        result = probe_rate(n_nodes, rate, params, costs)
        _tag(result.windows, "bisect", rate)
        probes += 1
        return result

    if lo <= 0.0:
        # Even the ramp origin saturated; seed the search below it.
        hi = hi if hi is not None else params.max_rate
        lo = hi / 16.0
    # The ramp carries one warm cache across its holds, so its bracket
    # can be optimistic relative to the cold-cache runs bisection uses:
    # re-verify lo with fresh probes, tightening hi on each failure.
    while probes < params.max_probes:
        verify = _probe(lo)
        if not verify.saturated:
            break
        hi = lo
        lo = lo / max(params.growth, 2.0)
    if hi is not None:
        while probes < params.max_probes and hi / lo > 1.0 + params.precision:
            mid = math.sqrt(lo * hi)
            result = _probe(mid)
            if result.saturated:
                hi = mid
            else:
                lo = mid
    knee = lo
    profiler = ResourceProfiler()
    knee_probe = probe_rate(n_nodes, knee, params, costs, profiler=profiler)
    _tag(knee_probe.windows, "knee", knee)
    return KneeCell(
        nodes=n_nodes,
        knee=knee,
        bracket_lo=lo,
        bracket_hi=hi,
        probes=probes,
        hit_ratio=knee_probe.hit_ratio,
        mean_rt=knee_probe.mean_rt,
        p99_rt=knee_probe.p99_rt,
        bottleneck=knee_bottleneck(profiler),
    )


def knee_bottleneck(profiler: ResourceProfiler) -> Dict[str, Any]:
    """The most saturated resource of the profiler's last run.

    Uses the exact ranking ``repro profile``'s bottleneck report uses
    (:func:`repro.obs.profiler._saturation`), so the knee annotation and
    a ``--profile-out`` of the same cell always agree.
    """
    profile = profiler.to_dict()
    entries = _entries(profile)
    if not entries:
        return {"name": None, "kind": None, "saturation": 0.0}
    top = max(entries, key=_saturation)
    return {
        "name": top["name"],
        "kind": top["kind"],
        "saturation": _saturation(top),
        "utilization": top.get("utilization"),
    }


def run_capacity_search(
    params: CapacityParams,
    costs: Optional[MachineCosts] = None,
    collect_windows: Optional[List[Dict[str, Any]]] = None,
) -> List[KneeCell]:
    """The full sweep: one :class:`KneeCell` per cluster size."""
    return [
        find_knee(n, params, costs, collect_windows) for n in params.nodes
    ]


# -- reporting ---------------------------------------------------------------
def knee_report(cells: Sequence[KneeCell],
                params: CapacityParams) -> Dict[str, Any]:
    """The committed ``results/capacity_knee.json`` document."""
    return {
        "schema": "repro-capacity-v1",
        "params": params.to_dict(),
        "cells": [cell.to_dict() for cell in cells],
    }


def render_knee_table(cells: Sequence[KneeCell],
                      params: CapacityParams) -> str:
    rows = []
    for cell in cells:
        censored = cell.bracket_hi is None
        rows.append((
            cell.nodes,
            f"{cell.knee:.2f}" + ("+" if censored else ""),
            f"{cell.knee / cell.nodes:.2f}",
            f"{cell.hit_ratio:.0%}" if cell.hit_ratio == cell.hit_ratio
            else "-",
            f"{cell.p99_rt:.3f}" if cell.p99_rt == cell.p99_rt else "-",
            cell.bottleneck.get("name") or "-",
        ))
    return render_table(
        "Capacity: max sustainable req/s before the SLO detector fires",
        ["nodes", "knee req/s", "per node", "hit ratio", "p99 (s)",
         "bottleneck at knee"],
        rows,
        note=(
            f"knee = highest rate with < {params.consecutive} consecutive "
            f"windows over SLO (p99 <= {params.slo_p99:g}s, rho <= "
            f"{params.max_rho:g}); '+' = never saturated below "
            f"{params.max_rate:g}/s; bottleneck ranked like `repro profile`"
        ),
    )


def write_knee_report(cells: Sequence[KneeCell], params: CapacityParams,
                      json_path, txt_path=None) -> None:
    """Deterministic export: sorted keys, no timestamps, trailing newline."""
    document = knee_report(cells, params)
    write_text(
        json_path,
        json.dumps(document, sort_keys=True, indent=2) + "\n",
    )
    if txt_path is not None:
        write_text(txt_path, render_knee_table(cells, params) + "\n")
