"""Study: sustainable throughput (capacity) with and without caching.

The paper measures response time under a fixed closed-loop population;
an operator's question is the dual: *how much offered load can the
cluster absorb before melting?*  This study feeds the cluster an
open-loop Poisson arrival stream at increasing rates and watches the
response time.  Cooperative caching converts most CGI executions into
cache fetches, moving the saturation knee far to the right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..clients import OpenLoopSource, poisson_timed_trace
from ..core import CacheMode, SwalaCluster, SwalaConfig
from ..hosts import MachineCosts
from ..metrics import render_table
from ..sim import Simulator
from ..workload import zipf_cgi_trace

__all__ = ["CapacityRow", "run_capacity_study", "render_capacity_study"]


@dataclass(frozen=True)
class CapacityRow:
    arrival_rate: float
    mode: str
    mean_rt: float
    p95_rt: float
    hit_ratio: float

    @property
    def saturated(self) -> bool:
        """Heuristic: queueing has clearly blown past service times."""
        return self.mean_rt > 5.0


def _run_one(rate: float, mode: CacheMode, n_nodes: int, n_requests: int,
             n_distinct: int, seed: int, costs: Optional[MachineCosts]):
    trace = zipf_cgi_trace(
        n_requests, n_distinct, zipf=1.0, cpu_time_mean=0.2, seed=seed
    )
    stamped = poisson_timed_trace(trace, rate=rate, seed=seed + 1)
    sim = Simulator()
    cluster = SwalaCluster(sim, n_nodes, SwalaConfig(mode=mode), costs=costs)
    cluster.start()
    source = OpenLoopSource(
        sim, cluster.network, "frontdoor", cluster.node_names, stamped
    )
    sim.run(until=source.start())
    stats = cluster.stats()
    return CapacityRow(
        arrival_rate=rate,
        mode=mode.value,
        mean_rt=source.response_times.mean,
        p95_rt=source.response_times.percentile(95),
        hit_ratio=stats.hit_ratio,
    )


def run_capacity_study(
    rates: Sequence[float] = (4.0, 8.0, 12.0, 16.0, 24.0),
    n_nodes: int = 2,
    n_requests: int = 500,
    n_distinct: int = 60,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[CapacityRow]:
    rows = []
    for rate in rates:
        for mode in (CacheMode.NONE, CacheMode.COOPERATIVE):
            rows.append(
                _run_one(rate, mode, n_nodes, n_requests, n_distinct, seed,
                         costs)
            )
    return rows


def render_capacity_study(rows: List[CapacityRow]) -> str:
    return render_table(
        "Study: open-loop capacity, caching off vs on",
        ["arrivals/s", "mode", "mean rt (s)", "p95 rt (s)", "hit ratio",
         "saturated"],
        [
            (r.arrival_rate, r.mode, r.mean_rt, r.p95_rt,
             f"{r.hit_ratio:.0%}", r.saturated)
            for r in rows
        ],
        note="caching moves the saturation knee to a much higher offered "
        "load — the operator-facing dual of the paper's response-time "
        "results",
    )
