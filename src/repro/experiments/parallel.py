"""Fan independent experiment runs across a process pool.

Every paper experiment is a sweep over independent simulation runs (node
counts x cache modes x seeds), and each run is single-threaded and
deterministic — so the sweep is embarrassingly parallel across
*processes*.  :func:`fanout` is the one primitive the experiment modules
use: it runs a module-level worker once per parameter cell and returns
the results in cell order, so a parallel sweep renders the exact same
table as a serial one.

Observed sweeps (``--trace-out`` / ``--metrics-out`` / ...) fan out too:
the parent ships a picklable
:class:`~repro.experiments.common.ObserverSpec` to each worker, the
worker runs its cell under a fresh local observer, and the collector
snapshots ride back on the pool result channel to be folded in cell
order — reproducing the serial sweep's run numbering and span ids
exactly.  Two fallbacks keep correctness ahead of speed:

* **oracle-aware**: the consistency oracle (``--audit-out``) audits
  global event order and cannot be merged from workers, so it forces a
  serial sweep — loudly, via :func:`~repro.experiments.common.oracle_forces_serial`,
  never silently.
* **degenerate sweeps**: one cell (or ``jobs <= 1``) runs inline with no
  pool setup cost.

Workers must be module-level callables (picklable) and must *regenerate*
their workload from parameters (e.g. a seed) rather than close over
shared state; trace synthesis is deterministic, so a regenerated trace is
identical to a shared one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import runtime

__all__ = ["effective_jobs", "fanout"]


def effective_jobs(jobs: Optional[int], n_cells: int) -> int:
    """How many worker processes a sweep will actually use.

    ``None``/``<=1`` mean serial; an active consistency oracle
    (``--audit-out``) forces serial with a warning — every other
    collector merges, so it no longer downgrades the sweep.
    """
    if jobs is None or jobs <= 1 or n_cells <= 1:
        return 1
    observer = runtime.current_observer()
    if observer is not None:
        from .common import oracle_forces_serial

        if oracle_forces_serial(observer, "--jobs"):
            return 1
    return min(jobs, n_cells)


def _invoke(payload):
    worker, kwargs = payload
    return worker(**kwargs)


def _invoke_observed(payload):
    """Worker side of an observed fan-out: run the cell under a fresh
    observer built from the spec, return ``(result, snapshot bundle)``."""
    worker, kwargs, spec = payload
    from .common import observe_runs

    observer = spec.build()
    with observe_runs(observer):
        result = worker(**kwargs)
    return result, observer.snapshot()


def fanout(
    worker: Callable[..., Any],
    cells: Sequence[Dict[str, Any]],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Run ``worker(**cell)`` for every cell; results in cell order.

    With ``jobs`` > 1 the cells are distributed over a
    ``multiprocessing`` pool; ordering of the returned list is the cell
    order either way, so downstream rendering is deterministic.  When an
    observer is active its collectors are rebuilt per worker cell and
    the snapshots merged back in cell order (see the module docstring).
    """
    cells = list(cells)
    n_workers = effective_jobs(jobs, len(cells))
    if n_workers <= 1:
        return [worker(**cell) for cell in cells]
    from ..parallel import map_parallel

    observer = runtime.current_observer()
    if observer is None:
        return map_parallel(
            _invoke, [(worker, cell) for cell in cells], n_workers=n_workers
        )
    from .common import ObserverSpec

    spec = ObserverSpec.from_observer(observer)
    pairs = map_parallel(
        _invoke_observed,
        [(worker, cell, spec) for cell in cells],
        n_workers=n_workers,
    )
    results = []
    for result, snap in pairs:
        observer.merge_snapshot(snap)
        results.append(result)
    return results
