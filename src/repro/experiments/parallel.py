"""Fan independent experiment runs across a process pool.

Every paper experiment is a sweep over independent simulation runs (node
counts x cache modes x seeds), and each run is single-threaded and
deterministic — so the sweep is embarrassingly parallel across
*processes*.  :func:`fanout` is the one primitive the experiment modules
use: it runs a module-level worker once per parameter cell and returns
the results in cell order, so a parallel sweep renders the exact same
table as a serial one.

Two fallbacks keep correctness ahead of speed:

* **observer-aware**: when a :class:`~repro.experiments.common.RunObserver`
  is active (``--trace-out`` / ``--metrics-out``), runs stay serial and
  in-process so the observer sees every cluster; worker processes could
  not report spans back.
* **degenerate sweeps**: one cell (or ``jobs <= 1``) runs inline with no
  pool setup cost.

Workers must be module-level callables (picklable) and must *regenerate*
their workload from parameters (e.g. a seed) rather than close over
shared state; trace synthesis is deterministic, so a regenerated trace is
identical to a shared one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import runtime

__all__ = ["effective_jobs", "fanout"]


def effective_jobs(jobs: Optional[int], n_cells: int) -> int:
    """How many worker processes a sweep will actually use.

    ``None``/``<=1`` mean serial; an active run observer forces serial
    (tracing and metrics collection happen in-process).
    """
    if jobs is None or jobs <= 1 or n_cells <= 1:
        return 1
    if runtime.current_observer() is not None:
        return 1
    return min(jobs, n_cells)


def _invoke(payload):
    worker, kwargs = payload
    return worker(**kwargs)


def fanout(
    worker: Callable[..., Any],
    cells: Sequence[Dict[str, Any]],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Run ``worker(**cell)`` for every cell; results in cell order.

    With ``jobs`` > 1 (and no active observer) the cells are distributed
    over a ``multiprocessing`` pool; ordering of the returned list is the
    cell order either way, so downstream rendering is deterministic.
    """
    cells = list(cells)
    n_workers = effective_jobs(jobs, len(cells))
    if n_workers <= 1:
        return [worker(**cell) for cell in cells]
    from ..parallel import map_parallel

    return map_parallel(
        _invoke, [(worker, cell) for cell in cells], n_workers=n_workers
    )
