"""Ablation: the execution-time caching threshold and cache-size trade-off.

Paper §3: "If we cache too many short requests, we risk having a working
set that exceeds our cache size, resulting in thrashing and no performance
improvement.  On the other hand, if we cache only very long requests, we
will not realize as much of the benefit of caching.  The threshold needs
to be selected carefully, based on the system workload."

Two sweeps make that concrete:

* ``run_threshold_study`` — sweep ``min_exec_time`` with a small cache and
  a mixed short/long workload; report hits, evictions (thrashing), and the
  execution time actually avoided;
* ``run_cache_size_study`` — sweep the per-node cache size at a fixed
  threshold (the Table 5 <-> Table 6 axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import CacheMode
from ..hosts import MachineCosts
from ..metrics import render_table
from ..workload import PAPER_ADL, Trace, generate_adl_trace
from .common import run_cluster_trace

__all__ = [
    "ThresholdStudyRow",
    "run_threshold_study",
    "render_threshold_study",
    "CacheSizeRow",
    "run_cache_size_study",
    "render_cache_size_study",
]


@dataclass(frozen=True)
class ThresholdStudyRow:
    min_exec_time: float
    hits: int
    inserts: int
    evictions: int
    discards: int
    exec_time_avoided: float
    mean_response_time: float


def _adl_cgi(scale: float, seed: int) -> Trace:
    return generate_adl_trace(PAPER_ADL.scaled(scale), seed=seed).cgi_only()


def run_threshold_study(
    thresholds: Sequence[float] = (0.0, 0.1, 0.5, 1.0, 2.0, 5.0),
    cache_size: int = 30,
    n_nodes: int = 2,
    scale: float = 0.02,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[ThresholdStudyRow]:
    trace = _adl_cgi(scale, seed)
    rows = []
    for threshold in thresholds:
        times, cluster = run_cluster_trace(
            n_nodes,
            CacheMode.COOPERATIVE,
            trace,
            config_kw=dict(cache_capacity=cache_size, min_exec_time=threshold),
            costs=costs,
        )
        stats = cluster.stats()
        executed = sum(node.exec_times.total for node in stats.nodes)
        rows.append(
            ThresholdStudyRow(
                min_exec_time=threshold,
                hits=stats.hits,
                inserts=stats.inserts,
                evictions=stats.evictions,
                discards=sum(node.discards for node in stats.nodes),
                exec_time_avoided=trace.total_service_time() - executed,
                mean_response_time=times.mean,
            )
        )
    return rows


def render_threshold_study(rows: List[ThresholdStudyRow]) -> str:
    return render_table(
        "Ablation: execution-time caching threshold (small cache)",
        ["threshold (s)", "hits", "inserts", "evictions", "discards",
         "exec time avoided (s)", "mean rt (s)"],
        [
            (
                r.min_exec_time,
                r.hits,
                r.inserts,
                r.evictions,
                r.discards,
                r.exec_time_avoided,
                r.mean_response_time,
            )
            for r in rows
        ],
        note="paper §3: too low a threshold floods a small cache "
        "(evictions explode), too high forfeits savings — pick by workload",
    )


@dataclass(frozen=True)
class CacheSizeRow:
    cache_size: int
    hits: int
    percent_of_bound: float
    evictions: int
    mean_response_time: float


def run_cache_size_study(
    sizes: Sequence[int] = (5, 10, 20, 50, 100, 200, 500),
    n_nodes: int = 4,
    scale: float = 0.02,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[CacheSizeRow]:
    trace = _adl_cgi(scale, seed)
    bound = trace.max_possible_hits()
    rows = []
    for size in sizes:
        times, cluster = run_cluster_trace(
            n_nodes,
            CacheMode.COOPERATIVE,
            trace,
            config_kw=dict(cache_capacity=size),
            costs=costs,
        )
        stats = cluster.stats()
        rows.append(
            CacheSizeRow(
                cache_size=size,
                hits=stats.hits,
                percent_of_bound=100.0 * stats.hits / bound if bound else 0.0,
                evictions=stats.evictions,
                mean_response_time=times.mean,
            )
        )
    return rows


def render_cache_size_study(rows: List[CacheSizeRow]) -> str:
    return render_table(
        "Ablation: per-node cache size (cooperative)",
        ["cache size", "hits", "% of bound", "evictions", "mean rt (s)"],
        [
            (
                r.cache_size,
                r.hits,
                f"{r.percent_of_bound:.1f}%",
                r.evictions,
                r.mean_response_time,
            )
            for r in rows
        ],
        note="the Table 5 (fits) <-> Table 6 (thrashes) axis, swept",
    )
