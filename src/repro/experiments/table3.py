"""Table 3 — response-time overhead of insertion + broadcast (§5.2).

180 unique, cacheable, 1-second requests are sent to one node of a 2..8
node cluster: every request misses, inserts, and broadcasts.  The paper
finds the increase over non-caching mode insignificant and independent of
the node count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..clients import ClientThread
from ..core import CacheMode, SwalaCluster, SwalaConfig
from ..hosts import MachineCosts
from ..metrics import render_table
from ..sim import Simulator
from ..workload import unique_cgi_trace

__all__ = ["Table3Row", "run_table3", "render_table3"]


@dataclass(frozen=True)
class Table3Row:
    nodes: int
    no_cache: float
    coop_cache: float

    @property
    def increase(self) -> float:
        return self.coop_cache - self.no_cache


def _run_one(n_nodes: int, mode: CacheMode, n_requests: int, cpu_time: float,
             costs: Optional[MachineCosts], directory: str = "broadcast") -> float:
    trace = unique_cgi_trace(n_requests, cpu_time=cpu_time)
    config = SwalaConfig(mode=mode, directory_protocol=directory)
    from ..sim.pdes import sim_partitions
    from .common import (
        current_observer,
        oracle_forces_serial,
        partitioned_observed_run,
    )

    n_shards, backend = sim_partitions()
    if (
        n_shards > 1 and n_nodes > 1
        and not oracle_forces_serial(current_observer(), "--parallel-sim")
    ):
        # Partitioned twin: the same single client pinned to node 0, the
        # broadcasts fanning out across shards.  Observed runs ride the
        # same path with shard-local collectors.
        times, _ = partitioned_observed_run(
            n_nodes,
            config,
            trace,
            n_threads=1,
            n_hosts=1,
            costs=costs,
            install=False,
            n_shards=n_shards,
            backend=backend,
            host_prefix="client",
        )
        return times.mean
    sim = Simulator()
    cluster = SwalaCluster(sim, n_nodes, config, costs=costs)
    cluster.start()
    # Explicit name (not the process-global auto counter): probe and
    # reply-port names derive from it, and the partitioned twin above
    # must export identical resource names for the `repro diff` gates.
    client = ClientThread(
        sim, cluster.network, "client0", cluster.node_names[0], list(trace),
        name="client0",
    )
    sim.run(until=client.start())
    return client.response_times.mean


def run_table3(
    node_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    n_requests: int = 180,
    cpu_time: float = 1.0,
    costs: Optional[MachineCosts] = None,
    directory: str = "broadcast",
) -> List[Table3Row]:
    """``directory`` selects the cooperative runs' dirsync protocol; the
    default reproduces the paper's broadcast exactly (same config, same
    code path), which the CI bit-identity gate relies on."""
    rows = []
    for n in node_counts:
        rows.append(
            Table3Row(
                nodes=n,
                no_cache=_run_one(n, CacheMode.NONE, n_requests, cpu_time, costs),
                coop_cache=_run_one(
                    n, CacheMode.COOPERATIVE, n_requests, cpu_time, costs,
                    directory=directory,
                ),
            )
        )
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    return render_table(
        "Table 3: response-time overhead of insertion + broadcast",
        ["# nodes", "no cache (s)", "coop cache (s)", "increase (s)"],
        [(r.nodes, r.no_cache, r.coop_cache, r.increase) for r in rows],
        note="paper: increase insignificant and independent of node count",
    )
