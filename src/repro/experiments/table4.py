"""Table 4 — overhead of replicated-directory maintenance (§5.2).

A single Swala node is told that seven other nodes exist; a *pseudo-server*
program (here: a simulation process per fake peer) streams directory-update
messages at a configurable aggregate rate (UPS) while the node serves 180
uncacheable one-second requests.  Paper: the response-time increase is
insignificant even at high update rates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cache import CacheEntry
from ..clients import ClientThread
from ..core import (
    DIRECTORY_UPDATE_BYTES,
    UPDATE_PORT,
    CacheInsert,
    CacheMode,
    SwalaConfig,
    SwalaServer,
)
from ..hosts import Machine, MachineCosts
from ..metrics import render_table
from ..net import Network
from ..sim import Simulator
from ..workload import uncacheable_cgi_trace
from .common import current_observer

__all__ = ["Table4Row", "run_table4", "render_table4", "PseudoServer"]

_pseudo_urls = itertools.count()


class PseudoServer:
    """Emits synthetic insert updates to one target node at a fixed rate."""

    def __init__(self, sim: Simulator, network: Network, name: str, target: str,
                 interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.network = network
        self.name = name
        self.target = target
        self.interval = interval
        self.sent = 0
        network.attach(name)

    def start(self):
        return self.sim.process(self._run(), name=f"pseudo-{self.name}")

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval)
            entry = CacheEntry(
                url=f"/cgi-bin/pseudo?u={next(_pseudo_urls)}",
                owner=self.name,
                size=4_000,
                exec_time=1.0,
                created=self.sim.now,
            )
            self.network.send(
                self.name, self.target, UPDATE_PORT,
                CacheInsert(entry=entry), DIRECTORY_UPDATE_BYTES,
            )
            self.sent += 1


@dataclass(frozen=True)
class Table4Row:
    updates_per_second: float
    response_time: float
    base_time: float

    @property
    def increase(self) -> float:
        return self.response_time - self.base_time


def _run_one(ups: float, n_requests: int, n_fake_peers: int,
             costs: Optional[MachineCosts]) -> float:
    sim = Simulator()
    network = Network(sim)
    machine = Machine(sim, "srv", costs)
    fake_peers = [f"pseudo{i}" for i in range(n_fake_peers)]
    server = SwalaServer(
        sim, machine, network, ["srv"] + fake_peers,
        SwalaConfig(mode=CacheMode.COOPERATIVE), name="srv",
    )
    observer = current_observer()
    if observer is not None:
        observer.attach(server)
    server.start()
    if ups > 0:
        per_peer = ups / n_fake_peers
        for peer in fake_peers:
            PseudoServer(sim, network, peer, "srv", 1.0 / per_peer).start()
    trace = uncacheable_cgi_trace(n_requests)
    client = ClientThread(sim, network, "client0", "srv", list(trace))
    sim.run(until=client.start())
    return client.response_times.mean


def run_table4(
    update_rates: Sequence[float] = (0.0, 10.0, 20.0, 50.0, 100.0),
    n_requests: int = 180,
    n_fake_peers: int = 7,
    costs: Optional[MachineCosts] = None,
) -> List[Table4Row]:
    base = _run_one(update_rates[0], n_requests, n_fake_peers, costs)
    rows = [Table4Row(update_rates[0], base, base)]
    for ups in update_rates[1:]:
        rows.append(
            Table4Row(ups, _run_one(ups, n_requests, n_fake_peers, costs), base)
        )
    return rows


def render_table4(rows: List[Table4Row]) -> str:
    return render_table(
        "Table 4: response-time overhead of replicated directory maintenance",
        ["UPS", "avg response time (s)", "increase (s)"],
        [(r.updates_per_second, r.response_time, r.increase) for r in rows],
        note="paper: increase on one-second requests insignificant",
    )
