"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's tables: replacement-policy comparison under a
small cache (the paper defers its five policies to the tech report),
directory-locking granularity (§4.2 argues for table-level locks), and
TTL sensitivity of the content-consistency scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cache import POLICY_NAMES
from ..core import CacheMode, LockingGranularity
from ..hosts import MachineCosts
from ..metrics import hit_ratio_summary, render_table
from ..workload import hit_ratio_trace, zipf_cgi_trace
from .common import run_cluster_trace

__all__ = [
    "PolicyRow",
    "run_policy_ablation",
    "render_policy_ablation",
    "LockingRow",
    "run_locking_ablation",
    "render_locking_ablation",
    "TtlRow",
    "run_ttl_ablation",
    "render_ttl_ablation",
]


# --------------------------------------------------------------------------
# Replacement policies
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyRow:
    policy: str
    hits: int
    percent_of_bound: float
    mean_response_time: float
    time_saved_weighted: float  # sum of exec_time over hits (what caching saved)


def run_policy_ablation(
    policies: Sequence[str] = POLICY_NAMES,
    cache_size: int = 20,
    n_nodes: int = 4,
    total: int = 1_600,
    unique: int = 1_122,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[PolicyRow]:
    trace = hit_ratio_trace(total=total, unique=unique, seed=seed)
    rows = []
    for policy in policies:
        times, cluster = run_cluster_trace(
            n_nodes,
            CacheMode.COOPERATIVE,
            trace,
            config_kw=dict(cache_capacity=cache_size, policy=policy),
            costs=costs,
        )
        summary = hit_ratio_summary(cluster.stats(), trace, n_nodes)
        # Execution time actually spent vs. the no-cache total = time saved.
        executed = sum(node.exec_times.total for node in cluster.stats().nodes)
        rows.append(
            PolicyRow(
                policy=policy,
                hits=summary.hits,
                percent_of_bound=summary.percent_of_upper_bound,
                mean_response_time=times.mean,
                time_saved_weighted=trace.total_service_time() - executed,
            )
        )
    return rows


def render_policy_ablation(rows: List[PolicyRow]) -> str:
    return render_table(
        "Ablation: replacement policy (cooperative, small cache)",
        ["policy", "hits", "% of bound", "mean rt (s)", "exec time avoided (s)"],
        [
            (
                r.policy,
                r.hits,
                f"{r.percent_of_bound:.1f}%",
                r.mean_response_time,
                r.time_saved_weighted,
            )
            for r in rows
        ],
        note="policies trade hit count against hit value; which wins depends "
        "on how correlated cost and popularity are (paper §3)",
    )


# --------------------------------------------------------------------------
# Locking granularity
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class LockingRow:
    granularity: str
    mean_response_time: float
    lock_wait_time: float


def run_locking_ablation(
    n_nodes: int = 4,
    n_requests: int = 1_200,
    n_distinct: int = 150,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[LockingRow]:
    trace = zipf_cgi_trace(
        n_requests, n_distinct, zipf=0.9, cpu_time_mean=0.3, seed=seed
    )
    rows = []
    for granularity in LockingGranularity:
        times, cluster = run_cluster_trace(
            n_nodes,
            CacheMode.COOPERATIVE,
            trace,
            config_kw=dict(cache_capacity=2_000, locking=granularity),
            costs=costs,
        )
        wait = sum(
            server.cacher.directory.total_lock_waits()
            for server in cluster.servers
        )
        rows.append(
            LockingRow(
                granularity=granularity.value,
                mean_response_time=times.mean,
                lock_wait_time=wait,
            )
        )
    return rows


def render_locking_ablation(rows: List[LockingRow]) -> str:
    return render_table(
        "Ablation: directory locking granularity (§4.2)",
        ["granularity", "mean rt (s)", "total lock wait (s)"],
        [(r.granularity, r.mean_response_time, r.lock_wait_time) for r in rows],
        note="paper argues table-level locks balance contention "
        "(directory-level) against per-entry lock overhead (entry-level)",
    )


# --------------------------------------------------------------------------
# TTL / content consistency
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class TtlRow:
    ttl: float
    hits: int
    expirations: int
    false_hits: int
    mean_response_time: float


def run_ttl_ablation(
    ttls: Sequence[float] = (2.0, 10.0, 60.0, float("inf")),
    n_nodes: int = 4,
    n_requests: int = 1_200,
    n_distinct: int = 150,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[TtlRow]:
    trace = zipf_cgi_trace(
        n_requests, n_distinct, zipf=0.9, cpu_time_mean=0.3, seed=seed
    )
    rows = []
    for ttl in ttls:
        times, cluster = run_cluster_trace(
            n_nodes,
            CacheMode.COOPERATIVE,
            trace,
            config_kw=dict(cache_capacity=2_000, default_ttl=ttl,
                           purge_interval=1.0),
            costs=costs,
        )
        stats = cluster.stats()
        rows.append(
            TtlRow(
                ttl=ttl,
                hits=stats.hits,
                expirations=sum(n.expirations for n in stats.nodes),
                false_hits=stats.false_hits,
                mean_response_time=times.mean,
            )
        )
    return rows


def render_ttl_ablation(rows: List[TtlRow]) -> str:
    return render_table(
        "Ablation: TTL content consistency",
        ["TTL (s)", "hits", "expirations", "false hits", "mean rt (s)"],
        [
            (r.ttl, r.hits, r.expirations, r.false_hits, r.mean_response_time)
            for r in rows
        ],
        note="shorter TTLs trade hits (and response time) for freshness",
    )
