"""Figure 4 — multi-node performance with and without caching (§5.2).

A synthetic workload with the ADL log's repeat structure and temporal
locality is replayed by two client machines running eight threads each;
the node count sweeps 1..8.  Paper shape: caching lowers average response
time substantially (~25% at 8 nodes); no-cache response time falls nearly
linearly with nodes (speedup ≈ 9 at 8 nodes relative to 1 node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import CacheMode
from ..hosts import MachineCosts
from ..metrics import render_table, speedup
from ..workload import AdlSpec, PAPER_ADL, Trace, generate_adl_trace
from .common import run_cluster_trace
from .parallel import fanout

__all__ = ["Figure4Row", "run_figure4", "render_figure4", "figure4_workload"]


@dataclass(frozen=True)
class Figure4Row:
    nodes: int
    no_cache: float
    coop_cache: float
    hits: int
    hit_ratio: float

    @property
    def improvement_percent(self) -> float:
        return 100.0 * (self.no_cache - self.coop_cache) / self.no_cache


def figure4_workload(scale: float = 0.02, seed: int = 0) -> Trace:
    """CGI-only slice of the synthetic ADL log ("the workload contains the
    same number of repeats and the same amount of temporal locality as the
    original log"), scaled for simulation turnaround."""
    return generate_adl_trace(PAPER_ADL.scaled(scale), seed=seed).cgi_only()


def _figure4_cell(
    nodes: int,
    scale: float,
    seed: int,
    threads_per_client: int,
    n_client_hosts: int,
    costs: Optional[MachineCosts],
) -> Figure4Row:
    """One node-count data point (independent of every other point, so the
    sweep fans out over processes; the workload is regenerated from the
    seed, which yields the identical trace in every worker)."""
    trace = figure4_workload(scale, seed)
    n_threads = threads_per_client * n_client_hosts
    nocache, _ = run_cluster_trace(
        nodes, CacheMode.NONE, trace, n_threads, n_client_hosts, costs=costs
    )
    coop, cluster = run_cluster_trace(
        nodes, CacheMode.COOPERATIVE, trace, n_threads, n_client_hosts, costs=costs
    )
    stats = cluster.stats()
    return Figure4Row(
        nodes=nodes,
        no_cache=nocache.mean,
        coop_cache=coop.mean,
        hits=stats.hits,
        hit_ratio=stats.hit_ratio,
    )


def run_figure4(
    node_counts: Sequence[int] = (1, 2, 4, 6, 8),
    scale: float = 0.02,
    seed: int = 0,
    threads_per_client: int = 8,
    n_client_hosts: int = 2,
    costs: Optional[MachineCosts] = None,
    jobs: Optional[int] = None,
) -> List[Figure4Row]:
    cells = [
        dict(
            nodes=n,
            scale=scale,
            seed=seed,
            threads_per_client=threads_per_client,
            n_client_hosts=n_client_hosts,
            costs=costs,
        )
        for n in node_counts
    ]
    return fanout(_figure4_cell, cells, jobs=jobs)


def render_figure4(rows: List[Figure4Row]) -> str:
    base_nc = rows[0].no_cache
    base_cc = rows[0].coop_cache
    return render_table(
        "Figure 4: multi-node avg response time (s), with/without caching",
        [
            "nodes",
            "no cache",
            "coop cache",
            "improvement %",
            "speedup (nc)",
            "speedup (cc)",
            "hit ratio",
        ],
        [
            (
                r.nodes,
                r.no_cache,
                r.coop_cache,
                r.improvement_percent,
                speedup(base_nc, r.no_cache),
                speedup(base_cc, r.coop_cache),
                r.hit_ratio,
            )
            for r in rows
        ],
        note="paper: ~25% lower response time with caching at 8 nodes; "
        "speedup ~9 at 8 nodes",
    )
