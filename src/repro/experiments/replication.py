"""Multi-seed replication of experiments.

One simulation run gives one number; referees want error bars.  This
module re-runs any seedable experiment metric across independent seeds
(optionally in parallel processes) and reports a Student-t confidence
interval over the replications — the standard independent-replications
method, complementing the within-run batch-means tools in
:mod:`repro.metrics.statistics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from scipy import stats as _scipy_stats

from ..metrics import MeanCI
from ..parallel import run_grid

__all__ = ["Replication", "replicate"]


@dataclass(frozen=True)
class Replication:
    """Replicated metric: per-seed values + the CI across replications."""

    values: tuple
    seeds: tuple
    ci: MeanCI

    def __len__(self) -> int:
        return len(self.values)


def replicate(
    metric: Callable[..., float],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    confidence: float = 0.95,
    n_workers: Optional[int] = 1,
    **fixed_kwargs,
) -> Replication:
    """Run ``metric(seed=s, **fixed_kwargs)`` for each seed; CI over seeds.

    ``metric`` must be a module-level callable returning a float (it is
    shipped to worker processes when ``n_workers > 1``).
    """
    if len(seeds) < 2:
        raise ValueError("need at least 2 seeds for a confidence interval")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    grid = {"seed": list(seeds)}
    if fixed_kwargs:
        # Fixed parameters become single-value grid axes.
        for key, value in fixed_kwargs.items():
            grid[key] = [value]
    results = run_grid(metric, grid, n_workers=n_workers)
    # run_grid expands seed-major (seed is the first key): order preserved.
    values = tuple(float(r.value) for r in results)
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _scipy_stats.t.ppf(0.5 + confidence / 2, df=n - 1)
    half = t * math.sqrt(var / n)
    return Replication(
        values=values,
        seeds=tuple(seeds),
        ci=MeanCI(mean=mean, half_width=half, confidence=confidence, n=n),
    )
