"""Ablation: request routing x caching mode.

The paper pins client threads to nodes; real deployments put a dispatcher
in front.  This study crosses the four routing policies with stand-alone
vs cooperative caching.  The interesting cell is ``url_hash`` +
stand-alone: cache-affinity routing recovers most of cooperative caching's
hit ratio *without* any inter-node protocol — the observation that later
became LARD — while cooperative caching is routing-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..clients import ClientFleet
from ..core import CacheMode, SwalaCluster, SwalaConfig
from ..hosts import Machine, MachineCosts
from ..lb import BALANCER_POLICIES, LoadBalancer
from ..metrics import render_table
from ..sim import Simulator
from ..workload import Trace, zipf_cgi_trace

__all__ = ["BalancerRow", "run_balancer_study", "render_balancer_study"]


@dataclass(frozen=True)
class BalancerRow:
    policy: str
    mode: str
    mean_response_time: float
    hits: int
    local_hits: int
    remote_hits: int
    hit_ratio: float
    backend_spread: float  # max/min requests per backend (1.0 = perfectly even)


def run_balancer_study(
    policies: Sequence[str] = BALANCER_POLICIES,
    modes: Sequence[CacheMode] = (CacheMode.STANDALONE, CacheMode.COOPERATIVE),
    n_nodes: int = 4,
    n_requests: int = 1_200,
    n_distinct: int = 200,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[BalancerRow]:
    trace = zipf_cgi_trace(
        n_requests, n_distinct, zipf=0.9, cpu_time_mean=0.4, seed=seed
    )
    rows = []
    for policy in policies:
        for mode in modes:
            rows.append(
                _run_one(policy, mode, n_nodes, trace, costs)
            )
    return rows


def _run_one(policy: str, mode: CacheMode, n_nodes: int, trace: Trace,
             costs: Optional[MachineCosts]) -> BalancerRow:
    sim = Simulator()
    cluster = SwalaCluster(sim, n_nodes, SwalaConfig(mode=mode), costs=costs)
    cluster.start()
    lb_machine = Machine(sim, "lb", costs)
    balancer = LoadBalancer(
        sim, lb_machine, cluster.network, cluster.node_names, policy=policy
    )
    balancer.start()
    if policy == "least_loaded":
        balancer.attach_heartbeats(cluster.servers)
    fleet = ClientFleet(
        sim, cluster.network, trace, servers=["lb"], n_threads=16, n_hosts=2
    )
    times = fleet.run()
    stats = cluster.stats()
    counts = [balancer.per_backend[b] for b in balancer.backends]
    spread = max(counts) / max(1, min(counts))
    return BalancerRow(
        policy=policy,
        mode=mode.value,
        mean_response_time=times.mean,
        hits=stats.hits,
        local_hits=stats.local_hits,
        remote_hits=stats.remote_hits,
        hit_ratio=stats.hit_ratio,
        backend_spread=spread,
    )


def render_balancer_study(rows: List[BalancerRow]) -> str:
    return render_table(
        "Ablation: routing policy x caching mode",
        ["policy", "mode", "mean rt (s)", "hits", "local", "remote",
         "hit ratio", "spread"],
        [
            (
                r.policy,
                r.mode,
                r.mean_response_time,
                r.hits,
                r.local_hits,
                r.remote_hits,
                f"{r.hit_ratio:.1%}",
                r.backend_spread,
            )
            for r in rows
        ],
        note="url_hash gives stand-alone caches cooperative-level hit "
        "ratios with zero remote fetches (cache-affinity routing); "
        "cooperative caching works under any routing",
    )
