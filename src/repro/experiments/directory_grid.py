"""Directory-protocol grid — broadcast vs summary indicators at scale.

The paper's replicated directory (§4.1) broadcasts every cache insert
and delete to every peer: with ``U`` updates on an ``N``-node cluster
that is ``U x (N-1)`` messages, and the per-request directory traffic
grows linearly with the cluster.  The :mod:`repro.core.dirsync` seam
adds two summary-indicator protocols — periodic cache digests and
batched Bloom-filter deltas — that trade a bounded window of staleness
(false misses, and for Bloom a configured false-hit probability) for
update coalescing.

This grid quantifies that trade: ``protocol x cluster size`` on two
workload mixes (the WebStone-derived Tables 5/6 mix and the ADL logs),
reporting directory messages and bytes per request, hit ratio, mean
latency, and the false-hit / false-miss rates.  The coalescing factor —
updates folded into each summary — is what the grid is calibrated to
expose: each mix's indicator periods are sized so several updates
accumulate per refresh (see :data:`GRID_MIXES`), which is exactly the
regime where indicators beat the broadcast by an order of magnitude.

1024-node cells run fine under ``--parallel-sim`` (the conservative
PDES shards of :mod:`repro.sim.pdes`); the grid only reads merged
:class:`~repro.core.stats.ClusterStats`, which both execution paths
provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import CacheMode
from ..core.dirsync import DIRECTORY_PROTOCOLS
from ..hosts import MachineCosts
from ..metrics import render_table
from ..workload import PAPER_ADL, Trace, generate_adl_trace, hit_ratio_trace
from .common import run_cluster_trace

__all__ = [
    "GridMix",
    "GridCell",
    "GRID_MIXES",
    "run_directory_grid",
    "render_directory_grid",
    "grid_to_dicts",
]


@dataclass(frozen=True)
class GridMix:
    """One workload column of the grid, with its indicator calibration.

    The indicator periods are per-mix because coalescing is what makes a
    summary protocol pay off: a refresh period must span several inserts
    per node (insert rate x period >> 1), and the mixes differ in
    per-node insert rate.  Periods far beyond the run length would be
    degenerate the other way — summaries that never fire.
    """

    name: str
    #: Digest refresh period, seconds.
    digest_interval: float
    #: Bloom delta-batch size (flush when this many deltas queue).
    indicator_batch: int
    #: Bloom flush timer, seconds (flush pending deltas at least this often).
    indicator_max_delay: float

    def trace(self, scale: float, seed: int) -> Trace:
        raise NotImplementedError

    def config_kw(self, protocol: str) -> dict:
        return dict(
            directory_protocol=protocol,
            digest_interval=self.digest_interval,
            indicator_batch=self.indicator_batch,
            indicator_max_delay=self.indicator_max_delay,
        )


class _WebstoneMix(GridMix):
    """3x the Tables 5/6 WebStone-derived mix (~1 insert/s per node)."""

    def trace(self, scale: float, seed: int) -> Trace:
        return hit_ratio_trace(
            total=max(2, int(round(4800 * scale))),
            unique=max(1, int(round(3366 * scale))),
            seed=seed,
        )


class _AdlMix(GridMix):
    """The ADL log's CGI mix (longer scripts, ~0.6 inserts/s per node)."""

    def trace(self, scale: float, seed: int) -> Trace:
        return generate_adl_trace(
            PAPER_ADL.scaled(0.07 * scale), seed=seed
        ).cgi_only()


#: The grid's workload columns, indicator periods pre-calibrated so a
#: refresh coalesces ~10+ updates at the default scale.
GRID_MIXES: Dict[str, GridMix] = {
    "webstone": _WebstoneMix(
        name="webstone",
        digest_interval=15.0,
        indicator_batch=32,
        indicator_max_delay=15.0,
    ),
    "adl": _AdlMix(
        name="adl",
        digest_interval=20.0,
        indicator_batch=32,
        indicator_max_delay=25.0,
    ),
}


@dataclass(frozen=True)
class GridCell:
    mix: str
    protocol: str
    nodes: int
    requests: int
    dir_msgs: int
    dir_bytes: int
    hits: int
    misses: int
    false_hits: int
    false_misses: int
    inserts: int
    hit_ratio: float
    mean_rt: float

    @property
    def msgs_per_request(self) -> float:
        return self.dir_msgs / max(1, self.requests)

    @property
    def bytes_per_request(self) -> float:
        return self.dir_bytes / max(1, self.requests)

    @property
    def false_hit_rate(self) -> float:
        """False hits over lookups whose URL was cached nowhere.

        ``misses + false_hits`` counts the lookups that (eventually) had
        to execute; ``false_hits`` is how many of those were first sent
        on a futile remote fetch.  For the Bloom protocol this is the
        empirical counterpart of ``indicator_fp_rate`` (plus staleness).
        """
        return self.false_hits / max(1, self.misses + self.false_hits)

    @property
    def false_miss_rate(self) -> float:
        """Duplicate executions (of work a peer already had) per request."""
        return self.false_misses / max(1, self.requests)


def run_directory_grid(
    node_counts: Sequence[int] = (8, 64, 256, 1024),
    protocols: Sequence[str] = DIRECTORY_PROTOCOLS,
    mixes: Sequence[str] = ("webstone", "adl"),
    n_threads: int = 64,
    n_hosts: int = 8,
    scale: float = 1.0,
    seed: int = 3,
    costs: Optional[MachineCosts] = None,
) -> List[GridCell]:
    """Run the full ``mix x protocol x nodes`` grid.

    ``n_threads`` caps the number of *active* nodes: client threads are
    dealt round-robin over the cluster, so sizes beyond ``n_threads``
    add passive peers — nodes that receive directory traffic but serve
    no requests, which is precisely how a large cluster hurts the
    broadcast.  ``scale`` shrinks both traces proportionally for smoke
    runs.
    """
    for mix in mixes:
        if mix not in GRID_MIXES:
            raise ValueError(
                f"unknown mix {mix!r}; expected one of {sorted(GRID_MIXES)}"
            )
    for protocol in protocols:
        if protocol not in DIRECTORY_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; "
                f"expected one of {DIRECTORY_PROTOCOLS}"
            )
    cells: List[GridCell] = []
    for mix in mixes:
        spec = GRID_MIXES[mix]
        for n_nodes in node_counts:
            for protocol in protocols:
                trace = spec.trace(scale, seed)
                times, cluster = run_cluster_trace(
                    n_nodes,
                    CacheMode.COOPERATIVE,
                    trace,
                    n_threads=min(n_threads, max(1, len(trace))),
                    n_hosts=n_hosts,
                    config_kw=spec.config_kw(protocol),
                    costs=costs,
                )
                stats = cluster.stats()
                cells.append(
                    GridCell(
                        mix=mix,
                        protocol=protocol,
                        nodes=n_nodes,
                        requests=stats.requests,
                        dir_msgs=stats.dir_msgs_sent,
                        dir_bytes=stats.dir_bytes_sent,
                        hits=stats.local_hits + stats.remote_hits,
                        misses=stats.misses,
                        false_hits=stats.false_hits,
                        false_misses=stats.false_misses,
                        inserts=stats.inserts,
                        hit_ratio=stats.hit_ratio,
                        mean_rt=times.mean,
                    )
                )
    return cells


def _reduction(cell: GridCell, baseline: Optional[GridCell]) -> str:
    if (
        baseline is None
        or cell.protocol == "broadcast"
        or cell.msgs_per_request <= 0
    ):
        return "-"
    return f"{baseline.msgs_per_request / cell.msgs_per_request:.1f}x"


def render_directory_grid(cells: Sequence[GridCell]) -> str:
    """One table per mix; ``reduction`` is broadcast msgs/req over own."""
    blocks = []
    for mix in dict.fromkeys(cell.mix for cell in cells):
        rows = []
        mix_cells = [c for c in cells if c.mix == mix]
        for n_nodes in dict.fromkeys(c.nodes for c in mix_cells):
            group = [c for c in mix_cells if c.nodes == n_nodes]
            baseline = next(
                (c for c in group if c.protocol == "broadcast"), None
            )
            for cell in group:
                rows.append(
                    (
                        cell.nodes,
                        cell.protocol,
                        round(cell.msgs_per_request, 2),
                        round(cell.bytes_per_request, 1),
                        _reduction(cell, baseline),
                        round(cell.hit_ratio, 4),
                        round(cell.mean_rt, 4),
                        round(cell.false_hit_rate, 4),
                        round(cell.false_miss_rate, 4),
                    )
                )
        blocks.append(
            render_table(
                f"Directory-protocol grid — {mix} mix",
                [
                    "nodes",
                    "protocol",
                    "dir msgs/req",
                    "dir bytes/req",
                    "reduction",
                    "hit ratio",
                    "mean rt (s)",
                    "false-hit rate",
                    "false-miss rate",
                ],
                rows,
                note=(
                    "reduction = broadcast dir-msgs/req over this "
                    "protocol's, same mix and size"
                ),
            )
        )
    return "\n\n".join(blocks)


def grid_to_dicts(cells: Sequence[GridCell]) -> List[dict]:
    """JSON-ready cell records (derived rates included for auditability)."""
    return [
        {
            "mix": c.mix,
            "protocol": c.protocol,
            "nodes": c.nodes,
            "requests": c.requests,
            "dir_msgs": c.dir_msgs,
            "dir_bytes": c.dir_bytes,
            "msgs_per_request": round(c.msgs_per_request, 6),
            "bytes_per_request": round(c.bytes_per_request, 6),
            "hits": c.hits,
            "misses": c.misses,
            "inserts": c.inserts,
            "false_hits": c.false_hits,
            "false_misses": c.false_misses,
            "hit_ratio": round(c.hit_ratio, 6),
            "mean_rt": round(c.mean_rt, 6),
            "false_hit_rate": round(c.false_hit_rate, 6),
            "false_miss_rate": round(c.false_miss_rate, 6),
        }
        for c in cells
    ]
