"""Shared helpers for the per-table/figure experiment harnesses."""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..clients import ClientFleet, ClientThread
from ..core import CacheMode, SwalaCluster, SwalaConfig, SwalaServer
from ..hosts import Machine, MachineCosts
from ..net import Network
from ..sim import Simulator, Tally
from ..workload import Trace

__all__ = [
    "single_swala",
    "run_single_server_fleet",
    "run_cluster_trace",
    "warm_cluster",
]


def single_swala(
    sim: Simulator,
    config: SwalaConfig,
    costs: Optional[MachineCosts] = None,
    name: str = "srv",
) -> Tuple[SwalaServer, Network]:
    """One Swala node on a fresh LAN."""
    network = Network(sim)
    machine = Machine(sim, name, costs)
    server = SwalaServer(sim, machine, network, [name], config, name=name)
    return server, network


def run_single_server_fleet(
    make_server: Callable[[Simulator, Network, Machine], object],
    trace: Trace,
    n_threads: int,
    n_hosts: int = 3,
    costs: Optional[MachineCosts] = None,
) -> Tuple[Tally, object]:
    """Build one server of any kind, run a closed-loop fleet against it.

    ``make_server`` receives ``(sim, network, machine)`` and returns a
    started-able server named/located at machine.name.
    """
    sim = Simulator()
    network = Network(sim)
    machine = Machine(sim, "srv", costs)
    server = make_server(sim, network, machine)
    server.install_files(trace)
    server.start()
    fleet = ClientFleet(
        sim, network, trace, servers=["srv"], n_threads=n_threads, n_hosts=n_hosts
    )
    times = fleet.run()
    return times, server


def run_cluster_trace(
    n_nodes: int,
    mode: CacheMode,
    trace: Trace,
    n_threads: int = 16,
    n_hosts: int = 2,
    config_kw: Optional[dict] = None,
    costs: Optional[MachineCosts] = None,
) -> Tuple[Tally, SwalaCluster]:
    """Run ``trace`` against an ``n_nodes`` cluster in the given mode.

    Client threads are dealt round-robin over nodes, each pinned to one
    node (the paper's client arrangement).
    """
    sim = Simulator()
    config = SwalaConfig(mode=mode, **(config_kw or {}))
    cluster = SwalaCluster(sim, n_nodes, config, costs=costs)
    cluster.install_files(trace)
    cluster.start()
    fleet = ClientFleet(
        sim,
        cluster.network,
        trace,
        servers=cluster.node_names,
        n_threads=n_threads,
        n_hosts=n_hosts,
    )
    times = fleet.run()
    return times, cluster


def warm_cluster(cluster: SwalaCluster, trace: Trace, node: str) -> None:
    """Replay ``trace`` once against ``node`` to populate its cache, then
    let the broadcasts settle."""
    sim = cluster.sim
    warmer = ClientThread(
        sim, cluster.network, "warmer", node, list(trace), name="warmer"
    )
    sim.run(until=warmer.start())
