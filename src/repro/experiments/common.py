"""Shared helpers for the per-table/figure experiment harnesses."""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..clients import ClientFleet, ClientThread
from ..core import CacheMode, SwalaCluster, SwalaConfig, SwalaServer
from ..hosts import Machine, MachineCosts
from ..net import Network
from ..obs import runtime
from ..sim import Simulator, Tally
from ..workload import Trace

__all__ = [
    "RunObserver",
    "ObserverSpec",
    "observe_runs",
    "current_observer",
    "oracle_forces_serial",
    "partitioned_observed_run",
    "single_swala",
    "run_single_server_fleet",
    "run_cluster_trace",
    "warm_cluster",
]


class RunObserver:
    """Observability hookup for experiment runs.

    Experiment commands build their simulators/clusters several layers
    below the CLI, so ``--trace-out`` / ``--metrics-out`` can't just pass
    a collector down every call chain.  Instead the CLI installs an
    observer with :func:`observe_runs`; ``SwalaCluster.start`` and the
    run helpers here look it up via :func:`current_observer` and call
    :meth:`attach` before running.  Metrics are scraped either eagerly
    with :meth:`collect` or once at command end with :meth:`collect_all`
    — both are idempotent per target, so the paths compose.
    """

    def __init__(
        self,
        tracer=None,
        registry=None,
        oracle=None,
        timeseries=None,
        timeseries_dt: float = 1.0,
        profiler=None,
        streaming=None,
    ):
        self.tracer = tracer
        self.registry = registry
        #: Optional :class:`~repro.obs.ConsistencyOracle` (``--audit-out``).
        self.oracle = oracle
        #: Optional :class:`~repro.obs.TimeSeriesLog` (``--timeseries-out``);
        #: a sampler daemon is spawned per attached simulation.
        self.timeseries = timeseries
        self.timeseries_dt = timeseries_dt
        #: Optional :class:`~repro.obs.ResourceProfiler` (``--profile-out``).
        self.profiler = profiler
        #: Optional :class:`~repro.obs.StreamingTelemetry`
        #: (``--streaming-out``); unlike the sampler it schedules nothing.
        self.streaming = streaming
        self.targets: list = []
        self._attached: set = set()
        self._collected: set = set()

    def attach(self, target) -> None:
        """Trace ``target`` (anything with ``attach_tracer``) from now on.

        Each *new* target marks a new run on the collector, so spans from
        the several back-to-back simulations one experiment command runs
        stay distinguishable in the dump.  Re-attaching the same target
        (e.g. a helper attached it and ``start()`` attaches again) is a
        no-op.
        """
        if not hasattr(target, "attach_tracer") or id(target) in self._attached:
            return
        self._attached.add(id(target))
        self.targets.append(target)  # keeps target (and its id) alive
        if self.tracer is not None:
            self.tracer.new_run()
            target.attach_tracer(self.tracer)
        if self.oracle is not None and hasattr(target, "attach_oracle"):
            self.oracle.new_run()
            target.attach_oracle(self.oracle)
        if self.profiler is not None and hasattr(target, "attach_profiler"):
            self.profiler.new_run()
            target.attach_profiler(self.profiler)
        if self.streaming is not None and hasattr(target, "attach_streaming"):
            self.streaming.new_run()
            target.attach_streaming(self.streaming)
        if self.timeseries is not None:
            self._start_sampler(target)

    def _start_sampler(self, target) -> None:
        """Spawn one sampling daemon in ``target``'s simulation."""
        sim = getattr(target, "sim", None)
        if sim is None:
            return
        from ..obs.timeseries import (
            TimeSeriesSampler,
            cluster_series,
            node_stats_series,
            oracle_series,
        )

        self.timeseries.new_run()
        sampler = TimeSeriesSampler(sim, self.timeseries, self.timeseries_dt)
        if hasattr(target, "servers"):
            sampler.add_source("cluster", cluster_series(target))
        elif hasattr(target, "stats"):
            sampler.add_source(
                "node", lambda server=target: node_stats_series(server)
            )
        if self.oracle is not None:
            sampler.add_source("oracle", oracle_series(self.oracle))
        sampler.start()

    def collect(self, target) -> None:
        """Scrape a finished server/cluster into the registry/profiler."""
        if id(target) in self._collected:
            return
        self._collected.add(id(target))
        if self.profiler is not None:
            # Flush integrals up to the run's final sim time; idempotent,
            # so finalizing earlier (stopped) runs again is harmless.
            self.profiler.finalize()
        if self.streaming is not None:
            # Close the window still open at end of run (idempotent too).
            self.streaming.finalize()
        if self.registry is None:
            return
        from ..obs import collect_network, collect_node_stats

        servers = getattr(target, "servers", None) or [target]
        for server in servers:
            stats = getattr(server, "stats", None)
            if stats is not None:
                collect_node_stats(self.registry, stats)
        network = getattr(target, "network", None)
        if network is not None:
            collect_network(self.registry, network)

    def collect_all(self) -> None:
        """Scrape every attached-but-not-yet-collected target.

        Stats objects are cumulative, so scraping once when the command
        finishes is equivalent to scraping right after each run.
        """
        for target in list(self.targets):
            self.collect(target)

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable snapshots of every mergeable collector.

        Finalizes first (via :meth:`collect_all`), so a ``--jobs`` worker
        can run its cells to completion, snapshot, and ship the bundle
        back over the pool result channel.  The oracle is deliberately
        absent: it audits global event order and cannot be sharded.
        """
        self.collect_all()
        return {
            "tracer": self.tracer.snapshot() if self.tracer else None,
            "registry": self.registry.snapshot() if self.registry else None,
            "timeseries":
                self.timeseries.snapshot() if self.timeseries else None,
            "profiler": self.profiler.snapshot() if self.profiler else None,
            "streaming":
                self.streaming.snapshot() if self.streaming else None,
        }

    def shard_snapshot(self, horizon: Optional[float] = None) -> Dict[str, Any]:
        """Like :meth:`snapshot`, but for a PDES shard's local observer.

        ``horizon`` is the coordinator's global terminal time: shard
        simulators overshoot the run's end by up to one conservative
        window, so probe integrals are frozen at the shared horizon
        instead of each shard's own final clock.
        """
        if self.profiler is not None:
            self.profiler.finalize(at=horizon)
        if self.streaming is not None:
            self.streaming.finalize()
        return {
            "tracer": self.tracer.snapshot() if self.tracer else None,
            "registry": None,  # scraped parent-side from the merged view
            "timeseries":
                self.timeseries.snapshot() if self.timeseries else None,
            "profiler": self.profiler.snapshot() if self.profiler else None,
            "streaming":
                self.streaming.snapshot() if self.streaming else None,
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold one worker's :meth:`snapshot` onto this observer.

        Sequential-concatenation semantics: the worker's runs become the
        next runs of this observer, with trace/span ids offset past the
        ids already assigned here — folding worker bundles in cell order
        reproduces the serial sweep's numbering exactly.
        """
        trace_off = span_off = 0
        if self.tracer is not None and snap.get("tracer") is not None:
            trace_off, span_off = self.tracer.merge_snapshot(snap["tracer"])
        if self.registry is not None and snap.get("registry") is not None:
            self.registry.merge_snapshot(snap["registry"])
        if self.timeseries is not None and snap.get("timeseries") is not None:
            self.timeseries.merge_snapshot(snap["timeseries"])
        if self.profiler is not None and snap.get("profiler") is not None:
            self.profiler.merge_snapshot(
                snap["profiler"],
                trace_offset=trace_off, span_offset=span_off,
            )
        if self.streaming is not None and snap.get("streaming") is not None:
            self.streaming.merge_snapshot(snap["streaming"])

    def merge_shard_snapshots(
        self,
        snaps: Sequence[Optional[Dict[str, Any]]],
        horizon: Optional[float] = None,
        n_servers: Optional[int] = None,
    ) -> None:
        """Fold per-shard snapshots of ONE partitioned simulation.

        Unlike :meth:`merge_snapshot`, every shard lands in the *same*
        merged run (they are slices of one simulation): each collector's
        current run count is the fixed base for all shards, and shards
        fold in shard-id order so ids and export order are deterministic.
        ``horizon`` trims shard overshoot from the time series;
        ``n_servers`` is the full cluster size for the streaming ρ.
        """
        snaps = [s for s in snaps if s is not None]
        if not snaps:
            return
        offsets = [(0, 0)] * len(snaps)
        if self.tracer is not None:
            base = self.tracer.run
            offsets = [
                self.tracer.merge_snapshot(snap["tracer"], run_base=base)
                if snap.get("tracer") is not None else (0, 0)
                for snap in snaps
            ]
        if self.profiler is not None:
            base = self.profiler.run
            for snap, (toff, soff) in zip(snaps, offsets):
                if snap.get("profiler") is not None:
                    self.profiler.merge_snapshot(
                        snap["profiler"], run_base=base,
                        trace_offset=toff, span_offset=soff,
                    )
        if self.timeseries is not None:
            base = self.timeseries.run
            for snap in snaps:
                if snap.get("timeseries") is not None:
                    self.timeseries.merge_snapshot(
                        snap["timeseries"], run_base=base, horizon=horizon,
                    )
        if self.streaming is not None:
            self.streaming.merge_shard_snapshots(
                [snap["streaming"] for snap in snaps
                 if snap.get("streaming") is not None],
                n_servers=n_servers,
            )

    def critical_records(self):
        """Per-request blame decompositions (``--critical-out``).

        Joins the collected span trees with the profiler's span-linked
        resource intervals; needs a tracer and a profiler built with
        ``record_intervals=True`` (the CLI arranges both when
        ``--critical-out`` is given).  Returns ``[]`` when tracing was
        off — never raises on an unobserved or empty run.
        """
        if self.tracer is None:
            return []
        from ..obs import decompose

        intervals = (
            self.profiler.all_intervals()
            if self.profiler is not None and self.profiler.linker is not None
            else None
        )
        return decompose(self.tracer, intervals)


@dataclass(frozen=True)
class ObserverSpec:
    """Picklable recipe for rebuilding a :class:`RunObserver` elsewhere.

    ``--jobs`` workers and PDES shards cannot share the parent's live
    collectors, so the parent ships this spec across the process/pipe
    boundary, each worker builds its own observer from it, runs, and
    ships a :meth:`RunObserver.snapshot` back for merging.  Each field
    holds the collector's constructor kwargs, or ``None`` when that
    collector is off; the oracle has no field — it is serial-only.
    """

    tracer: Optional[Dict[str, Any]] = None
    registry: bool = False
    timeseries: Optional[Dict[str, Any]] = None
    timeseries_dt: float = 1.0
    profiler: Optional[Dict[str, Any]] = None
    streaming: Optional[Dict[str, Any]] = None

    @classmethod
    def from_observer(cls, observer: "RunObserver") -> "ObserverSpec":
        """Capture the observer's collector configuration (not its data)."""
        tracer = timeseries = profiler = streaming = None
        registry = observer.registry is not None
        if observer.tracer is not None:
            tracer = {
                "max_spans": observer.tracer.max_spans,
                "max_events": observer.tracer.events.maxlen,
            }
        if observer.timeseries is not None:
            timeseries = {"max_samples": observer.timeseries.max_samples}
        if observer.profiler is not None:
            profiler = {
                "max_resources": observer.profiler.max_resources,
                "record_intervals": observer.profiler.linker is not None,
                "max_intervals": observer.profiler.max_intervals,
            }
        if observer.streaming is not None:
            s = observer.streaming
            streaming = {
                "window": s.window,
                "slo": s.slo,  # frozen dataclass, picklable
                "compression": s.compression,
                "keep_exact": s.keep_exact,
                "max_windows": s.max_windows,
                "ewma_halflife": s.rate_ewma.halflife,
            }
        return cls(
            tracer=tracer,
            registry=registry,
            timeseries=timeseries,
            timeseries_dt=observer.timeseries_dt,
            profiler=profiler,
            streaming=streaming,
        )

    def for_shard(self) -> "ObserverSpec":
        """The spec a PDES shard builds from: no registry (the parent
        scrapes node stats off the merged result view instead, so the
        shard-disjoint counters are never double-counted)."""
        return replace(self, registry=False)

    def build(self) -> "RunObserver":
        """Construct a fresh observer with empty collectors."""
        from ..obs import (
            MetricsRegistry,
            ResourceProfiler,
            StreamingTelemetry,
            TimeSeriesLog,
            TraceCollector,
        )

        return RunObserver(
            tracer=TraceCollector(**self.tracer)
                if self.tracer is not None else None,
            registry=MetricsRegistry() if self.registry else None,
            timeseries=TimeSeriesLog(**self.timeseries)
                if self.timeseries is not None else None,
            timeseries_dt=self.timeseries_dt,
            profiler=ResourceProfiler(**self.profiler)
                if self.profiler is not None else None,
            streaming=StreamingTelemetry(**self.streaming)
                if self.streaming is not None else None,
        )


def oracle_forces_serial(observer: Optional[object], what: str) -> bool:
    """True (with a loud warning) when ``observer`` carries the
    consistency oracle, which audits *global* event order and therefore
    cannot be sharded over simulators or worker processes.

    ``what`` names the parallelism being declined (``"--parallel-sim"``
    or ``"--jobs"``) so the warning tells the user which flag lost.
    """
    if observer is None or getattr(observer, "oracle", None) is None:
        return False
    warnings.warn(
        f"--audit-out keeps the run serial: the consistency oracle needs "
        f"the global event order and cannot be merged from shards; "
        f"drop --audit-out or {what} to silence this",
        RuntimeWarning,
        stacklevel=3,
    )
    return True


# The active-observer slot lives in ``repro.obs.runtime`` so that core
# layers (``SwalaCluster.start``) can consult it without importing the
# experiments package; these are the same objects, re-exported.
current_observer = runtime.current_observer


@contextmanager
def observe_runs(observer: Optional[RunObserver]):
    """Make ``observer`` the active one for runs started inside the block."""
    with runtime.observing(observer):
        yield observer


def single_swala(
    sim: Simulator,
    config: SwalaConfig,
    costs: Optional[MachineCosts] = None,
    name: str = "srv",
) -> Tuple[SwalaServer, Network]:
    """One Swala node on a fresh LAN."""
    network = Network(sim)
    machine = Machine(sim, name, costs)
    server = SwalaServer(sim, machine, network, [name], config, name=name)
    return server, network


def run_single_server_fleet(
    make_server: Callable[[Simulator, Network, Machine], object],
    trace: Trace,
    n_threads: int,
    n_hosts: int = 3,
    costs: Optional[MachineCosts] = None,
) -> Tuple[Tally, object]:
    """Build one server of any kind, run a closed-loop fleet against it.

    ``make_server`` receives ``(sim, network, machine)`` and returns a
    started-able server named/located at machine.name.
    """
    sim = Simulator()
    network = Network(sim)
    machine = Machine(sim, "srv", costs)
    server = make_server(sim, network, machine)
    server.install_files(trace)
    observer = current_observer()
    if observer is not None:
        observer.attach(server)
    server.start()
    fleet = ClientFleet(
        sim, network, trace, servers=["srv"], n_threads=n_threads, n_hosts=n_hosts
    )
    times = fleet.run()
    if observer is not None:
        observer.collect(server)
    return times, server


def partitioned_observed_run(
    n_nodes: int,
    config: SwalaConfig,
    trace: Trace,
    n_threads: int = 16,
    n_hosts: int = 2,
    costs: Optional[MachineCosts] = None,
    n_shards: int = 2,
    backend: str = "auto",
    install: bool = True,
    think_time: float = 0.0,
    host_prefix: str = "wsclient",
):
    """Partitioned run that keeps the active observer fed.

    Wraps :func:`repro.experiments.partition.run_partitioned_fleet`:
    when an observer is active, each shard gets its own collectors
    (built from an :class:`ObserverSpec`), and the per-shard snapshots
    are folded back into the live observer here — one merged run,
    deterministic regardless of backend.  The caller must have already
    declined the oracle (see :func:`oracle_forces_serial`).
    """
    from .partition import run_partitioned_fleet

    observer = current_observer()
    obs_spec = (
        ObserverSpec.from_observer(observer).for_shard()
        if observer is not None else None
    )
    times, view = run_partitioned_fleet(
        n_nodes,
        config,
        trace,
        n_threads=n_threads,
        n_hosts=n_hosts,
        costs=costs,
        think_time=think_time,
        install=install,
        n_shards=n_shards,
        backend=backend,
        obs_spec=obs_spec,
        host_prefix=host_prefix,
    )
    if observer is not None:
        observer.merge_shard_snapshots(
            view.obs_snapshots,
            horizon=view.terminal_time,
            n_servers=n_nodes,
        )
        observer.collect(view)
    return times, view


def run_cluster_trace(
    n_nodes: int,
    mode: CacheMode,
    trace: Trace,
    n_threads: int = 16,
    n_hosts: int = 2,
    config_kw: Optional[dict] = None,
    costs: Optional[MachineCosts] = None,
) -> Tuple[Tally, SwalaCluster]:
    """Run ``trace`` against an ``n_nodes`` cluster in the given mode.

    Client threads are dealt round-robin over nodes, each pinned to one
    node (the paper's client arrangement).

    When ``--parallel-sim`` set a process-global partition count (see
    :func:`repro.sim.pdes.set_sim_partitions`), the run is sharded over
    that many simulators under conservative synchronization instead —
    same workload, same timeline, merged results.  Observed runs take
    the partitioned path too: each shard carries its own collectors and
    the snapshots merge deterministically (see
    :meth:`RunObserver.merge_shard_snapshots`).  Only the consistency
    oracle (``--audit-out``) still forces the serial path, with a
    warning.
    """
    from ..sim.pdes import sim_partitions

    n_shards, backend = sim_partitions()
    config = SwalaConfig(mode=mode, **(config_kw or {}))
    observer = current_observer()
    if (
        n_shards > 1 and n_nodes > 1
        and not oracle_forces_serial(observer, "--parallel-sim")
    ):
        return partitioned_observed_run(
            n_nodes,
            config,
            trace,
            n_threads=n_threads,
            n_hosts=n_hosts,
            costs=costs,
            n_shards=n_shards,
            backend=backend,
        )
    sim = Simulator()
    cluster = SwalaCluster(sim, n_nodes, config, costs=costs)
    cluster.install_files(trace)
    if observer is not None:
        observer.attach(cluster)
    cluster.start()
    fleet = ClientFleet(
        sim,
        cluster.network,
        trace,
        servers=cluster.node_names,
        n_threads=n_threads,
        n_hosts=n_hosts,
    )
    times = fleet.run()
    if observer is not None:
        observer.collect(cluster)
    return times, cluster


def warm_cluster(cluster: SwalaCluster, trace: Trace, node: str) -> None:
    """Replay ``trace`` once against ``node`` to populate its cache, then
    let the broadcasts settle."""
    sim = cluster.sim
    warmer = ClientThread(
        sim, cluster.network, "warmer", node, list(trace), name="warmer"
    )
    sim.run(until=warmer.start())
