"""Shared helpers for the per-table/figure experiment harnesses."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional, Sequence, Tuple

from ..clients import ClientFleet, ClientThread
from ..core import CacheMode, SwalaCluster, SwalaConfig, SwalaServer
from ..hosts import Machine, MachineCosts
from ..net import Network
from ..obs import runtime
from ..sim import Simulator, Tally
from ..workload import Trace

__all__ = [
    "RunObserver",
    "observe_runs",
    "current_observer",
    "single_swala",
    "run_single_server_fleet",
    "run_cluster_trace",
    "warm_cluster",
]


class RunObserver:
    """Observability hookup for experiment runs.

    Experiment commands build their simulators/clusters several layers
    below the CLI, so ``--trace-out`` / ``--metrics-out`` can't just pass
    a collector down every call chain.  Instead the CLI installs an
    observer with :func:`observe_runs`; ``SwalaCluster.start`` and the
    run helpers here look it up via :func:`current_observer` and call
    :meth:`attach` before running.  Metrics are scraped either eagerly
    with :meth:`collect` or once at command end with :meth:`collect_all`
    — both are idempotent per target, so the paths compose.
    """

    def __init__(
        self,
        tracer=None,
        registry=None,
        oracle=None,
        timeseries=None,
        timeseries_dt: float = 1.0,
        profiler=None,
        streaming=None,
    ):
        self.tracer = tracer
        self.registry = registry
        #: Optional :class:`~repro.obs.ConsistencyOracle` (``--audit-out``).
        self.oracle = oracle
        #: Optional :class:`~repro.obs.TimeSeriesLog` (``--timeseries-out``);
        #: a sampler daemon is spawned per attached simulation.
        self.timeseries = timeseries
        self.timeseries_dt = timeseries_dt
        #: Optional :class:`~repro.obs.ResourceProfiler` (``--profile-out``).
        self.profiler = profiler
        #: Optional :class:`~repro.obs.StreamingTelemetry`
        #: (``--streaming-out``); unlike the sampler it schedules nothing.
        self.streaming = streaming
        self.targets: list = []
        self._attached: set = set()
        self._collected: set = set()

    def attach(self, target) -> None:
        """Trace ``target`` (anything with ``attach_tracer``) from now on.

        Each *new* target marks a new run on the collector, so spans from
        the several back-to-back simulations one experiment command runs
        stay distinguishable in the dump.  Re-attaching the same target
        (e.g. a helper attached it and ``start()`` attaches again) is a
        no-op.
        """
        if not hasattr(target, "attach_tracer") or id(target) in self._attached:
            return
        self._attached.add(id(target))
        self.targets.append(target)  # keeps target (and its id) alive
        if self.tracer is not None:
            self.tracer.new_run()
            target.attach_tracer(self.tracer)
        if self.oracle is not None and hasattr(target, "attach_oracle"):
            self.oracle.new_run()
            target.attach_oracle(self.oracle)
        if self.profiler is not None and hasattr(target, "attach_profiler"):
            self.profiler.new_run()
            target.attach_profiler(self.profiler)
        if self.streaming is not None and hasattr(target, "attach_streaming"):
            self.streaming.new_run()
            target.attach_streaming(self.streaming)
        if self.timeseries is not None:
            self._start_sampler(target)

    def _start_sampler(self, target) -> None:
        """Spawn one sampling daemon in ``target``'s simulation."""
        sim = getattr(target, "sim", None)
        if sim is None:
            return
        from ..obs.timeseries import (
            TimeSeriesSampler,
            cluster_series,
            node_stats_series,
            oracle_series,
        )

        self.timeseries.new_run()
        sampler = TimeSeriesSampler(sim, self.timeseries, self.timeseries_dt)
        if hasattr(target, "servers"):
            sampler.add_source("cluster", cluster_series(target))
        elif hasattr(target, "stats"):
            sampler.add_source(
                "node", lambda server=target: node_stats_series(server)
            )
        if self.oracle is not None:
            sampler.add_source("oracle", oracle_series(self.oracle))
        sampler.start()

    def collect(self, target) -> None:
        """Scrape a finished server/cluster into the registry/profiler."""
        if id(target) in self._collected:
            return
        self._collected.add(id(target))
        if self.profiler is not None:
            # Flush integrals up to the run's final sim time; idempotent,
            # so finalizing earlier (stopped) runs again is harmless.
            self.profiler.finalize()
        if self.streaming is not None:
            # Close the window still open at end of run (idempotent too).
            self.streaming.finalize()
        if self.registry is None:
            return
        from ..obs import collect_network, collect_node_stats

        servers = getattr(target, "servers", None) or [target]
        for server in servers:
            stats = getattr(server, "stats", None)
            if stats is not None:
                collect_node_stats(self.registry, stats)
        network = getattr(target, "network", None)
        if network is not None:
            collect_network(self.registry, network)

    def collect_all(self) -> None:
        """Scrape every attached-but-not-yet-collected target.

        Stats objects are cumulative, so scraping once when the command
        finishes is equivalent to scraping right after each run.
        """
        for target in list(self.targets):
            self.collect(target)

    def critical_records(self):
        """Per-request blame decompositions (``--critical-out``).

        Joins the collected span trees with the profiler's span-linked
        resource intervals; needs a tracer and a profiler built with
        ``record_intervals=True`` (the CLI arranges both when
        ``--critical-out`` is given).  Returns ``[]`` when tracing was
        off — never raises on an unobserved or empty run.
        """
        if self.tracer is None:
            return []
        from ..obs import decompose

        intervals = (
            self.profiler.intervals
            if self.profiler is not None and self.profiler.linker is not None
            else None
        )
        return decompose(self.tracer, intervals)


# The active-observer slot lives in ``repro.obs.runtime`` so that core
# layers (``SwalaCluster.start``) can consult it without importing the
# experiments package; these are the same objects, re-exported.
current_observer = runtime.current_observer


@contextmanager
def observe_runs(observer: Optional[RunObserver]):
    """Make ``observer`` the active one for runs started inside the block."""
    with runtime.observing(observer):
        yield observer


def single_swala(
    sim: Simulator,
    config: SwalaConfig,
    costs: Optional[MachineCosts] = None,
    name: str = "srv",
) -> Tuple[SwalaServer, Network]:
    """One Swala node on a fresh LAN."""
    network = Network(sim)
    machine = Machine(sim, name, costs)
    server = SwalaServer(sim, machine, network, [name], config, name=name)
    return server, network


def run_single_server_fleet(
    make_server: Callable[[Simulator, Network, Machine], object],
    trace: Trace,
    n_threads: int,
    n_hosts: int = 3,
    costs: Optional[MachineCosts] = None,
) -> Tuple[Tally, object]:
    """Build one server of any kind, run a closed-loop fleet against it.

    ``make_server`` receives ``(sim, network, machine)`` and returns a
    started-able server named/located at machine.name.
    """
    sim = Simulator()
    network = Network(sim)
    machine = Machine(sim, "srv", costs)
    server = make_server(sim, network, machine)
    server.install_files(trace)
    observer = current_observer()
    if observer is not None:
        observer.attach(server)
    server.start()
    fleet = ClientFleet(
        sim, network, trace, servers=["srv"], n_threads=n_threads, n_hosts=n_hosts
    )
    times = fleet.run()
    if observer is not None:
        observer.collect(server)
    return times, server


def run_cluster_trace(
    n_nodes: int,
    mode: CacheMode,
    trace: Trace,
    n_threads: int = 16,
    n_hosts: int = 2,
    config_kw: Optional[dict] = None,
    costs: Optional[MachineCosts] = None,
) -> Tuple[Tally, SwalaCluster]:
    """Run ``trace`` against an ``n_nodes`` cluster in the given mode.

    Client threads are dealt round-robin over nodes, each pinned to one
    node (the paper's client arrangement).

    When ``--parallel-sim`` set a process-global partition count (see
    :func:`repro.sim.pdes.set_sim_partitions`), the run is sharded over
    that many simulators under conservative synchronization instead —
    same workload, same timeline, merged results.  Observed runs
    (``--trace-out`` etc.) always take the serial path: the observability
    taps assume one simulator.
    """
    from ..sim.pdes import sim_partitions

    n_shards, backend = sim_partitions()
    config = SwalaConfig(mode=mode, **(config_kw or {}))
    if n_shards > 1 and n_nodes > 1 and current_observer() is None:
        from .partition import run_partitioned_fleet

        return run_partitioned_fleet(
            n_nodes,
            config,
            trace,
            n_threads=n_threads,
            n_hosts=n_hosts,
            costs=costs,
            n_shards=n_shards,
            backend=backend,
        )
    sim = Simulator()
    cluster = SwalaCluster(sim, n_nodes, config, costs=costs)
    cluster.install_files(trace)
    observer = current_observer()
    if observer is not None:
        observer.attach(cluster)
    cluster.start()
    fleet = ClientFleet(
        sim,
        cluster.network,
        trace,
        servers=cluster.node_names,
        n_threads=n_threads,
        n_hosts=n_hosts,
    )
    times = fleet.run()
    if observer is not None:
        observer.collect(cluster)
    return times, cluster


def warm_cluster(cluster: SwalaCluster, trace: Trace, node: str) -> None:
    """Replay ``trace`` once against ``node`` to populate its cache, then
    let the broadcasts settle."""
    sim = cluster.sim
    warmer = ClientThread(
        sim, cluster.network, "warmer", node, list(trace), name="warmer"
    )
    sim.run(until=warmer.start())
