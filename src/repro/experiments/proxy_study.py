"""Study: proxy caching vs. server-side dynamic-content caching (paper §1–2).

The paper's positioning argument: for file fetches *the network* is the
bottleneck, so caching belongs near the client (proxies); for dynamic
requests *the server CPU* is the bottleneck, so caching belongs in the
server (Swala).  This study builds the full topology —

    clients ──fast LAN── proxy ──slow WAN── origin (Swala node)

— and measures per-class response times under five configurations:

* ``direct``        — no proxy, no server cache (baseline);
* ``proxy``         — proxy caching files only (the realistic proxy);
* ``proxy+dynamic`` — proxy also caching shareable CGI output naively;
* ``swala``         — no proxy, server-side CGI-result caching;
* ``proxy+swala``   — both (each attacks its own bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..clients import ClientFleet
from ..core import CacheMode, SwalaConfig, SwalaServer
from ..hosts import Machine, MachineCosts
from ..metrics import render_table
from ..sim import Tally
from ..net import Network
from ..proxy import ProxyCache
from .common import current_observer
from ..sim import Simulator
from ..workload import PAPER_ADL, RequestKind, Trace, generate_adl_trace

__all__ = ["ProxyStudyRow", "run_proxy_study", "render_proxy_study",
           "PROXY_CONFIGS"]

PROXY_CONFIGS = ("direct", "proxy", "proxy+dynamic", "swala", "proxy+swala")

#: WAN toward the origin: T1/early-cable territory.
WAN_LATENCY = 0.040
WAN_BANDWIDTH = 1.5e6 / 8


@dataclass(frozen=True)
class ProxyStudyRow:
    config: str
    mean_rt: float
    file_rt: float
    cgi_rt: float
    proxy_hits: int
    server_hits: int


def _class_means(fleet: ClientFleet) -> Tuple[float, float]:
    file_t, cgi_t = Tally("file"), Tally("cgi")
    for thread in fleet.threads:
        for response, elapsed in zip(thread.responses,
                                     thread.response_times.samples):
            if response.request.kind is RequestKind.FILE:
                file_t.observe(elapsed)
            else:
                cgi_t.observe(elapsed)
    return file_t.mean, cgi_t.mean


def _run_config(
    config: str, trace: Trace, n_threads: int, costs: Optional[MachineCosts]
) -> ProxyStudyRow:
    sim = Simulator()
    wan = Network(sim, latency=WAN_LATENCY, bandwidth=WAN_BANDWIDTH, name="wan")
    lan = Network(sim, name="lan")

    server_mode = (
        CacheMode.STANDALONE if config in ("swala", "proxy+swala")
        else CacheMode.NONE
    )
    origin_machine = Machine(sim, "origin", costs)
    origin = SwalaServer(
        sim, origin_machine, wan, ["origin"],
        SwalaConfig(mode=server_mode), name="origin",
    )
    origin.install_files(trace)
    observer = current_observer()
    if observer is not None:
        observer.attach(origin)
    origin.start()

    use_proxy = config.startswith("proxy")
    if use_proxy:
        proxy = ProxyCache(
            sim,
            Machine(sim, "proxy", costs),
            lan=lan,
            wan=wan,
            origin="origin",
            cache_dynamic=(config == "proxy+dynamic"),
        )
        proxy.start()
        fleet = ClientFleet(
            sim, lan, trace, servers=["proxy"], n_threads=n_threads, n_hosts=2
        )
    else:
        proxy = None
        fleet = ClientFleet(
            sim, wan, trace, servers=["origin"], n_threads=n_threads, n_hosts=2
        )

    times = fleet.run()
    file_rt, cgi_rt = _class_means(fleet)
    return ProxyStudyRow(
        config=config,
        mean_rt=times.mean,
        file_rt=file_rt,
        cgi_rt=cgi_rt,
        proxy_hits=proxy.stats.local_hits if proxy else 0,
        server_hits=origin.stats.hits,
    )


def run_proxy_study(
    configs: Sequence[str] = PROXY_CONFIGS,
    scale: float = 0.01,
    seed: int = 0,
    n_threads: int = 8,
    costs: Optional[MachineCosts] = None,
) -> List[ProxyStudyRow]:
    """Run the topology study on a scaled ADL mix (files + CGI)."""
    unknown = set(configs) - set(PROXY_CONFIGS)
    if unknown:
        raise ValueError(f"unknown configs {sorted(unknown)}")
    trace = generate_adl_trace(PAPER_ADL.scaled(scale), seed=seed)
    return [_run_config(c, trace, n_threads, costs) for c in configs]


def render_proxy_study(rows: List[ProxyStudyRow]) -> str:
    return render_table(
        "Study: proxy caching vs server-side CGI-result caching",
        ["config", "mean rt (s)", "file rt (s)", "CGI rt (s)",
         "proxy hits", "server hits"],
        [
            (r.config, r.mean_rt, r.file_rt, r.cgi_rt, r.proxy_hits,
             r.server_hits)
            for r in rows
        ],
        note="paper §1-2: proxies fix the network (file) bottleneck, "
        "server-side caching fixes the CPU (CGI) bottleneck; they compose",
    )
