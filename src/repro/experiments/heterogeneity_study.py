"""Study: heterogeneous node speeds in a cooperative cluster.

The paper's testbed had six Ultra 1s and two dual-CPU Ultra 2s, but used
"only one CPU on the Ultra 2 nodes during the tests ... thus, the CPU
power is roughly equivalent on all nodes".  This study runs the
counterfactuals:

* ``uniform``    — the paper's pinned configuration (baseline);
* ``two-fast``   — the Ultra 2s un-pinned (two nodes with 2 CPUs);
* ``straggler``  — one node at half speed (e.g. a background job): remote
  fetches *to* the straggler are slow, so cooperation spreads its pain —
  the flip side of sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import CacheMode
from ..hosts import SUN_ULTRA1, MachineCosts
from ..metrics import render_table
from ..workload import zipf_cgi_trace

__all__ = [
    "HeterogeneityRow",
    "run_heterogeneity_study",
    "render_heterogeneity_study",
    "HETEROGENEITY_CONFIGS",
]

HETEROGENEITY_CONFIGS = ("uniform", "two-fast", "straggler")


def _slow_profile(factor: float) -> MachineCosts:
    """A machine ``factor``x slower than the baseline (all CPU work,
    including CGI script bodies)."""
    return SUN_ULTRA1.with_(cpu_slowdown=factor)


def _node_costs(config: str, n_nodes: int) -> List[Optional[MachineCosts]]:
    if config == "uniform":
        return [None] * n_nodes
    if config == "two-fast":
        fast = SUN_ULTRA1.with_(ncpus=2)
        return [fast, fast] + [None] * (n_nodes - 2)
    if config == "straggler":
        return [_slow_profile(2.0)] + [None] * (n_nodes - 1)
    raise ValueError(f"unknown config {config!r}")


@dataclass(frozen=True)
class HeterogeneityRow:
    config: str
    mode: str
    mean_rt: float
    p95_rt: float
    hits: int
    remote_hits: int


def run_heterogeneity_study(
    configs: Sequence[str] = HETEROGENEITY_CONFIGS,
    n_nodes: int = 4,
    n_requests: int = 800,
    n_distinct: int = 120,
    seed: int = 0,
) -> List[HeterogeneityRow]:
    """Note: CGI *script bodies* take the same CPU-seconds everywhere; the
    straggler's handicap applies to the server-side costs, and its single
    CPU is shared by everything it runs — which is what matters under
    load.  The ``two-fast`` case simply has double capacity on two nodes."""
    from ..clients import ClientFleet
    from ..core import SwalaCluster, SwalaConfig
    from ..sim import Simulator

    trace = zipf_cgi_trace(
        n_requests, n_distinct, zipf=0.9, cpu_time_mean=0.4, seed=seed
    )
    rows: List[HeterogeneityRow] = []
    for config in configs:
        if config not in HETEROGENEITY_CONFIGS:
            raise ValueError(f"unknown config {config!r}")
        for mode in (CacheMode.STANDALONE, CacheMode.COOPERATIVE):
            sim = Simulator()
            cluster = SwalaCluster(
                sim, n_nodes, SwalaConfig(mode=mode),
                costs_per_node=_node_costs(config, n_nodes),
            )
            cluster.start()
            fleet = ClientFleet(
                sim, cluster.network, trace, servers=cluster.node_names,
                n_threads=16, n_hosts=2,
            )
            times = fleet.run()
            stats = cluster.stats()
            rows.append(
                HeterogeneityRow(
                    config=config,
                    mode=mode.value,
                    mean_rt=times.mean,
                    p95_rt=times.percentile(95),
                    hits=stats.hits,
                    remote_hits=stats.remote_hits,
                )
            )
    return rows


def render_heterogeneity_study(rows: List[HeterogeneityRow]) -> str:
    return render_table(
        "Study: heterogeneous node speeds (4 nodes)",
        ["config", "mode", "mean rt (s)", "p95 rt (s)", "hits", "remote hits"],
        [
            (r.config, r.mode, r.mean_rt, r.p95_rt, r.hits, r.remote_hits)
            for r in rows
        ],
        note="the paper pinned its dual-CPU nodes to one CPU for uniformity; "
        "un-pinning helps, a straggler hurts — and cooperation couples nodes "
        "to each other's speed via remote fetches",
    )
