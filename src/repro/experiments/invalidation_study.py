"""Ablation: content-consistency mechanisms (paper §4.2 + its future work).

Compares four ways to keep cached CGI results fresh while an application
keeps changing the underlying source data:

* ``none``     — cache forever (the weak baseline);
* ``ttl``      — expire after a TTL (what Swala ships);
* ``monitor``  — source-file monitoring (Vahdat & Anderson style);
* ``app``      — application-initiated invalidation messages
  (Iyengar & Challenger style).

Metric of interest: cache hits vs. **stale hits** (results served after
their source changed — ground truth the simulation can observe directly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..clients import ClientFleet
from ..core import (
    INVALIDATE_MSG_BYTES,
    INVALIDATION_PORT,
    CacheMode,
    DependencyRegistry,
    InvalidateUrl,
    SwalaCluster,
    SwalaConfig,
)
from ..hosts import MachineCosts
from ..metrics import render_table
from ..net import Network
from ..sim import Simulator
from ..workload import zipf_cgi_trace

__all__ = ["InvalidationRow", "run_invalidation_study", "render_invalidation_study"]

URL_PREFIX = "/cgi-bin/report"


@dataclass(frozen=True)
class InvalidationRow:
    scheme: str
    hits: int
    stale_hits: int
    invalidated: int
    expirations: int
    mean_response_time: float

    @property
    def stale_fraction(self) -> float:
        return self.stale_hits / self.hits if self.hits else 0.0


class SourceUpdater:
    """Application process: periodically rewrites one source file on every
    node (shared data) and, in ``app`` mode, sends invalidations for the
    queries that depend on it."""

    def __init__(self, sim: Simulator, cluster: SwalaCluster, sources: List[str],
                 urls_by_source, interval: float, send_invalidations: bool):
        self.sim = sim
        self.cluster = cluster
        self.sources = sources
        self.urls_by_source = urls_by_source
        self.interval = interval
        self.send_invalidations = send_invalidations
        self.updates = 0
        cluster.network.attach("app")

    def start(self):
        return self.sim.process(self._run(), name="source-updater")

    def _run(self):
        i = 0
        while True:
            yield self.sim.timeout(self.interval)
            source = self.sources[i % len(self.sources)]
            i += 1
            self.updates += 1
            for machine in self.cluster.machines:
                machine.fs.create(source, 10_000 + self.updates)
            if self.send_invalidations:
                for url in self.urls_by_source[source]:
                    for name in self.cluster.node_names:
                        self.cluster.network.send(
                            "app", name, INVALIDATION_PORT,
                            InvalidateUrl(url), INVALIDATE_MSG_BYTES,
                        )


def _build_registry(n_sources: int):
    registry = DependencyRegistry()
    sources = [f"/data/source{k}.db" for k in range(n_sources)]

    def dep_pred(k):
        return lambda url: url.startswith(URL_PREFIX) and _query_of(url) % n_sources == k

    for k, src in enumerate(sources):
        registry.register(dep_pred(k), [src])
    return registry, sources


def _query_of(url: str) -> int:
    return int(url.split("q=")[1])


def run_invalidation_study(
    schemes: Sequence[str] = ("none", "ttl", "monitor", "app"),
    n_nodes: int = 2,
    n_requests: int = 600,
    n_distinct: int = 40,
    n_sources: int = 5,
    update_interval: float = 5.0,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
) -> List[InvalidationRow]:
    trace = zipf_cgi_trace(
        n_requests, n_distinct, zipf=0.9, cpu_time_mean=0.3, seed=seed,
        url_prefix=URL_PREFIX,
    )
    rows = []
    for scheme in schemes:
        registry, sources = _build_registry(n_sources)
        urls_by_source = {
            src: [f"{URL_PREFIX}?q={q}" for q in range(n_distinct)
                  if q % n_sources == k]
            for k, src in enumerate(sources)
        }
        config = SwalaConfig(
            mode=CacheMode.COOPERATIVE,
            dependencies=registry,
            default_ttl=update_interval if scheme == "ttl" else math.inf,
            purge_interval=1.0,
            # The monitor polls fast only in "monitor" mode; otherwise the
            # registry exists purely for ground-truth staleness accounting.
            source_monitor_interval=(
                1.0 if scheme == "monitor" else 1e9
            ),
        )
        sim = Simulator()
        cluster = SwalaCluster(sim, n_nodes, config)
        cluster.start()
        for machine in cluster.machines:
            for src in sources:
                machine.fs.create(src, 10_000)
        updater = SourceUpdater(
            sim, cluster, sources, urls_by_source, update_interval,
            send_invalidations=(scheme == "app"),
        )
        updater.start()
        fleet = ClientFleet(
            sim, cluster.network, trace, servers=cluster.node_names,
            n_threads=8, n_hosts=2, think_time=0.05,
        )
        times = fleet.run()
        stats = cluster.stats()
        rows.append(
            InvalidationRow(
                scheme=scheme,
                hits=stats.hits,
                stale_hits=stats.stale_hits,
                invalidated=stats.invalidated,
                expirations=sum(n.expirations for n in stats.nodes),
                mean_response_time=times.mean,
            )
        )
    return rows


def render_invalidation_study(rows: List[InvalidationRow]) -> str:
    return render_table(
        "Ablation: content-consistency mechanisms under source churn",
        ["scheme", "hits", "stale hits", "stale %", "invalidated",
         "expired", "mean rt (s)"],
        [
            (
                r.scheme,
                r.hits,
                r.stale_hits,
                f"{100 * r.stale_fraction:.1f}%",
                r.invalidated,
                r.expirations,
                r.mean_response_time,
            )
            for r in rows
        ],
        note="'none' serves the most (stalest) hits; TTL trades hits for "
        "freshness bluntly; monitoring/app-invalidation target exactly the "
        "changed results (paper §4.2 future work)",
    )
