"""Table 2 — WebStone file-fetch response time vs. number of clients.

Paper shape: Swala is 2–7x faster than NCSA HTTPd; Netscape Enterprise is
slightly faster than Swala at few clients and slightly slower at many.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import CacheMode, SwalaConfig, SwalaServer
from ..hosts import MachineCosts
from ..metrics import render_table
from ..servers import EnterpriseServer, NcsaHttpd
from ..workload import webstone_file_trace
from .common import run_single_server_fleet
from .parallel import fanout

__all__ = ["Table2Row", "run_table2", "render_table2", "DEFAULT_CLIENT_COUNTS"]

DEFAULT_CLIENT_COUNTS = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Table2Row:
    clients: int
    httpd: float
    enterprise: float
    swala: float

    @property
    def httpd_over_swala(self) -> float:
        return self.httpd / self.swala


def _swala_factory(sim, network, machine):
    return SwalaServer(
        sim, machine, network, [machine.name],
        SwalaConfig(mode=CacheMode.NONE), name=machine.name,
    )


def _table2_cell(
    clients: int,
    requests_per_client: int,
    seed: int,
    costs: Optional[MachineCosts],
) -> Table2Row:
    """One client-count data point (three server models back to back)."""
    trace = webstone_file_trace(clients * requests_per_client, seed=seed)
    httpd, _ = run_single_server_fleet(
        lambda s, net, m: NcsaHttpd(s, m, net), trace, clients, costs=costs
    )
    ent, _ = run_single_server_fleet(
        lambda s, net, m: EnterpriseServer(s, m, net), trace, clients, costs=costs
    )
    swala, _ = run_single_server_fleet(_swala_factory, trace, clients, costs=costs)
    return Table2Row(
        clients=clients, httpd=httpd.mean, enterprise=ent.mean, swala=swala.mean
    )


def run_table2(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    requests_per_client: int = 30,
    seed: int = 0,
    costs: Optional[MachineCosts] = None,
    jobs: Optional[int] = None,
) -> List[Table2Row]:
    cells = [
        dict(
            clients=n,
            requests_per_client=requests_per_client,
            seed=seed,
            costs=costs,
        )
        for n in client_counts
    ]
    return fanout(_table2_cell, cells, jobs=jobs)


def render_table2(rows: List[Table2Row]) -> str:
    return render_table(
        "Table 2: WebStone file-fetch average response time (s)",
        ["# clients", "HTTPd", "Enterprise", "Swala", "HTTPd/Swala"],
        [(r.clients, r.httpd, r.enterprise, r.swala, r.httpd_over_swala) for r in rows],
        note="paper: Swala 2-7x faster than HTTPd; Enterprise faster at few "
        "clients, slower at many",
    )
