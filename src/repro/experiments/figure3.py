"""Figure 3 — null-CGI response time comparison (paper §5.1).

Five configurations under 24 simultaneous clients on 3 client machines:
Enterprise, NCSA HTTPd, Swala with caching disabled, Swala remote fetch
(two nodes, cache warmed on the first, all load on the second), and Swala
local fetch.  Paper shape: Swala-no-cache ≈ HTTPd, both faster than
Enterprise; local fetch cheapest; remote − local is a small constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clients import ClientFleet
from ..core import CacheMode, SwalaCluster, SwalaConfig, SwalaServer
from ..hosts import MachineCosts
from ..metrics import render_table
from ..servers import EnterpriseServer, NcsaHttpd
from ..sim import Simulator
from ..workload import nullcgi_trace
from .common import current_observer, run_single_server_fleet, warm_cluster
from .parallel import fanout

__all__ = ["Figure3Result", "run_figure3", "render_figure3"]


@dataclass(frozen=True)
class Figure3Result:
    enterprise: float
    httpd: float
    swala_no_cache: float
    swala_remote: float
    swala_local: float
    remote_hits: int
    local_hits: int

    @property
    def remote_overhead(self) -> float:
        """What the request/reply session between two nodes adds."""
        return self.swala_remote - self.swala_local


def _swala(mode):
    def factory(sim, network, machine):
        return SwalaServer(
            sim, machine, network, [machine.name], SwalaConfig(mode=mode),
            name=machine.name,
        )

    return factory


def _figure3_cell(
    which: str,
    n_clients: int,
    requests_per_client: int,
    n_client_hosts: int,
    costs: Optional[MachineCosts],
):
    """One of the five configurations; returns ``(mean, hits)`` where
    ``hits`` is meaningful only for the two cached configurations.  Each
    cell regenerates the (deterministic) null-CGI trace, so the five runs
    are fully independent and can execute in separate processes."""
    trace = nullcgi_trace(n_clients * requests_per_client)

    if which == "enterprise":
        times, _ = run_single_server_fleet(
            lambda s, net, m: EnterpriseServer(s, m, net),
            trace, n_clients, n_client_hosts, costs,
        )
        return times.mean, 0
    if which == "httpd":
        times, _ = run_single_server_fleet(
            lambda s, net, m: NcsaHttpd(s, m, net),
            trace, n_clients, n_client_hosts, costs,
        )
        return times.mean, 0
    if which == "nocache":
        times, _ = run_single_server_fleet(
            _swala(CacheMode.NONE), trace, n_clients, n_client_hosts, costs
        )
        return times.mean, 0

    observer = current_observer()
    if which == "local":
        # Local fetch: one node, cache warmed first (as in the paper) so
        # every measured request is a local hit.
        sim = Simulator()
        local_cluster = SwalaCluster(
            sim, 1, SwalaConfig(mode=CacheMode.STANDALONE), costs=costs,
            name_prefix="local",
        )
        if observer is not None:
            observer.attach(local_cluster)
        local_cluster.start()
        warm_cluster(local_cluster, nullcgi_trace(1), local_cluster.node_names[0])
        local_fleet = ClientFleet(
            sim,
            local_cluster.network,
            trace,
            servers=local_cluster.node_names,
            n_threads=n_clients,
            n_hosts=n_client_hosts,
        )
        local = local_fleet.run()
        local_srv = local_cluster.servers[0]
        if observer is not None:
            observer.collect(local_cluster)
        return local.mean, local_srv.stats.local_hits

    if which == "remote":
        # Remote fetch: warm node 0, then send all load to node 1.
        sim = Simulator()
        cluster = SwalaCluster(
            sim, 2, SwalaConfig(mode=CacheMode.COOPERATIVE), costs=costs
        )
        if observer is not None:
            observer.attach(cluster)
        cluster.start()
        warm_cluster(cluster, nullcgi_trace(1), cluster.node_names[0])
        fleet = ClientFleet(
            sim,
            cluster.network,
            trace,
            servers=[cluster.node_names[1]],
            n_threads=n_clients,
            n_hosts=n_client_hosts,
        )
        remote = fleet.run()
        if observer is not None:
            observer.collect(cluster)
        return remote.mean, cluster.stats().remote_hits

    raise ValueError(f"unknown figure3 configuration {which!r}")


def run_figure3(
    n_clients: int = 24,
    requests_per_client: int = 20,
    n_client_hosts: int = 3,
    costs: Optional[MachineCosts] = None,
    jobs: Optional[int] = None,
) -> Figure3Result:
    cells = [
        dict(
            which=which,
            n_clients=n_clients,
            requests_per_client=requests_per_client,
            n_client_hosts=n_client_hosts,
            costs=costs,
        )
        for which in ("enterprise", "httpd", "nocache", "local", "remote")
    ]
    (ent, _), (httpd, _), (nocache, _), (local, local_hits), (remote, remote_hits) = (
        fanout(_figure3_cell, cells, jobs=jobs)
    )

    return Figure3Result(
        enterprise=ent,
        httpd=httpd,
        swala_no_cache=nocache,
        swala_remote=remote,
        swala_local=local,
        remote_hits=remote_hits,
        local_hits=local_hits,
    )


def render_figure3(result: Figure3Result) -> str:
    return render_table(
        "Figure 3: null-CGI request response time (24 clients), seconds",
        ["configuration", "avg response time (s)"],
        [
            ("Enterprise", result.enterprise),
            ("HTTPd", result.httpd),
            ("Swala no cache", result.swala_no_cache),
            ("Swala remote fetch", result.swala_remote),
            ("Swala local fetch", result.swala_local),
        ],
        note=(
            f"remote-fetch overhead = {result.remote_overhead:.4f}s; paper: "
            "Swala-no-cache comparable to HTTPd, faster than Enterprise; "
            "remote-local gap small and roughly output-size independent"
        ),
    )
