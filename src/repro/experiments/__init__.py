"""Experiment harnesses — one module per paper table/figure + ablations.

Each module exposes ``run_*`` (returns structured rows) and ``render_*``
(returns the text table the benchmarks print).  Benchmarks in
``benchmarks/`` are thin wrappers over these.
"""

from .ablations import (
    LockingRow,
    PolicyRow,
    TtlRow,
    render_locking_ablation,
    render_policy_ablation,
    render_ttl_ablation,
    run_locking_ablation,
    run_policy_ablation,
    run_ttl_ablation,
)
from .balancer_study import (
    BalancerRow,
    render_balancer_study,
    run_balancer_study,
)
from .capacity import (
    CapacityParams,
    KneeCell,
    ProbeResult,
    find_knee,
    knee_report,
    probe_rate,
    render_knee_table,
    run_capacity_search,
    write_knee_report,
)
from .capacity_study import (
    CapacityRow,
    render_capacity_study,
    run_capacity_study,
)
from .common import run_cluster_trace, run_single_server_fleet, single_swala, warm_cluster
from .directory_grid import (
    GRID_MIXES,
    GridCell,
    GridMix,
    grid_to_dicts,
    render_directory_grid,
    run_directory_grid,
)
from .figure3 import Figure3Result, render_figure3, run_figure3
from .figure4 import Figure4Row, figure4_workload, render_figure4, run_figure4
from .invalidation_study import (
    InvalidationRow,
    render_invalidation_study,
    run_invalidation_study,
)
from .heterogeneity_study import (
    HETEROGENEITY_CONFIGS,
    HeterogeneityRow,
    render_heterogeneity_study,
    run_heterogeneity_study,
)
from .hit_ratio import (
    HitRatioRow,
    render_hit_ratio_table,
    run_hit_ratio_experiment,
    run_table5,
    run_table6,
)
from .threshold_study import (
    CacheSizeRow,
    ThresholdStudyRow,
    render_cache_size_study,
    render_threshold_study,
    run_cache_size_study,
    run_threshold_study,
)
from .proxy_study import (
    PROXY_CONFIGS,
    ProxyStudyRow,
    render_proxy_study,
    run_proxy_study,
)
from .replication import Replication, replicate
from .table1 import PAPER_1S_ROW, Table1Result, render_table1, run_table1
from .table2 import Table2Row, render_table2, run_table2
from .table3 import Table3Row, render_table3, run_table3
from .table4 import PseudoServer, Table4Row, render_table4, run_table4

__all__ = [
    "run_table1",
    "render_table1",
    "Table1Result",
    "PAPER_1S_ROW",
    "run_table2",
    "render_table2",
    "Table2Row",
    "run_figure3",
    "render_figure3",
    "Figure3Result",
    "run_figure4",
    "render_figure4",
    "Figure4Row",
    "figure4_workload",
    "run_table3",
    "render_table3",
    "Table3Row",
    "run_table4",
    "render_table4",
    "Table4Row",
    "PseudoServer",
    "run_directory_grid",
    "render_directory_grid",
    "grid_to_dicts",
    "GridCell",
    "GridMix",
    "GRID_MIXES",
    "run_table5",
    "run_table6",
    "run_hit_ratio_experiment",
    "render_hit_ratio_table",
    "HitRatioRow",
    "run_policy_ablation",
    "render_policy_ablation",
    "PolicyRow",
    "run_locking_ablation",
    "render_locking_ablation",
    "LockingRow",
    "run_ttl_ablation",
    "render_ttl_ablation",
    "TtlRow",
    "run_invalidation_study",
    "render_invalidation_study",
    "InvalidationRow",
    "run_balancer_study",
    "render_balancer_study",
    "BalancerRow",
    "run_threshold_study",
    "render_threshold_study",
    "ThresholdStudyRow",
    "run_cache_size_study",
    "render_cache_size_study",
    "CacheSizeRow",
    "run_proxy_study",
    "render_proxy_study",
    "ProxyStudyRow",
    "PROXY_CONFIGS",
    "run_heterogeneity_study",
    "render_heterogeneity_study",
    "HeterogeneityRow",
    "HETEROGENEITY_CONFIGS",
    "run_capacity_study",
    "render_capacity_study",
    "CapacityParams",
    "KneeCell",
    "ProbeResult",
    "probe_rate",
    "find_knee",
    "run_capacity_search",
    "knee_report",
    "render_knee_table",
    "write_knee_report",
    "CapacityRow",
    "replicate",
    "Replication",
    "run_cluster_trace",
    "run_single_server_fleet",
    "single_swala",
    "warm_cluster",
]
