"""Cache replacement policies.

The paper implements five replacement methods in Swala (§3 refers to the
companion technical report; the dimensions it names are "execution time,
access frequency, time of access, size etc.").  We provide the five natural
instantiations plus the GreedyDual-Size policy of Cao & Irani — the
cost-aware algorithm the paper cites as related work ([5]):

* ``LRU``   — evict the least recently used entry;
* ``LFU``   — evict the least frequently used entry;
* ``SIZE``  — evict the largest entry (keep many small results);
* ``COST``  — evict the cheapest-to-regenerate entry (lowest exec time);
* ``GDS``   — GreedyDual-Size with cost = exec time (combines recency,
  regeneration cost and size);
* ``FIFO``  — evict the oldest insertion (baseline).

All policies expose the same three hooks so the store can drive them
uniformly; ties break on the URL for determinism.

LFU/SIZE/COST/FIFO are backed by a lazy-invalidation heap index
(:class:`_HeapPolicy`): victim selection is O(log n) and access
bookkeeping O(1) amortized.  The straight O(n) scan implementations are
retained (``make_policy("<name>-scan")``) as the differential-testing
reference — a heap policy must pick byte-identical victims to its scan
twin over any operation sequence.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Optional

from .entry import CacheEntry

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "SizePolicy",
    "CostPolicy",
    "GreedyDualSizePolicy",
    "FIFOPolicy",
    "make_policy",
    "POLICY_NAMES",
    "SCAN_POLICY_NAMES",
]


class ReplacementPolicy:
    """Interface: notified of inserts/accesses/removals, picks victims."""

    name = "abstract"

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        raise NotImplementedError

    def on_access(self, entry: CacheEntry, now: float) -> None:
        raise NotImplementedError

    def on_remove(self, entry: CacheEntry) -> None:
        raise NotImplementedError

    def victim(self) -> CacheEntry:
        """The entry to evict next.  Undefined when the policy is empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} tracking={len(self)}>"


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, O(1) via an ordered dict."""

    name = "lru"

    def __init__(self):
        self._order: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        # The store removes before re-inserting, so this is always a fresh
        # key — and a fresh OrderedDict insert already lands at the end.
        self._order[entry.url] = entry

    def on_access(self, entry: CacheEntry, now: float) -> None:
        self._order.move_to_end(entry.url)

    def on_remove(self, entry: CacheEntry) -> None:
        self._order.pop(entry.url, None)

    def victim(self) -> CacheEntry:
        url = next(iter(self._order))
        return self._order[url]

    def __len__(self) -> int:
        return len(self._order)


class _ScanPolicy(ReplacementPolicy):
    """Base for policies that pick the minimum of a key over all entries.

    O(n) victim selection.  Kept as the executable specification for the
    heap-indexed policies below: the property suite drives a heap policy
    and its scan twin with identical operation sequences and asserts they
    evict identical victims.
    """

    def __init__(self):
        self._entries: Dict[str, CacheEntry] = {}

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._entries[entry.url] = entry

    def on_access(self, entry: CacheEntry, now: float) -> None:
        pass

    def on_remove(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.url, None)

    def _key(self, entry: CacheEntry):
        raise NotImplementedError

    def victim(self) -> CacheEntry:
        return min(self._entries.values(), key=lambda e: (self._key(e), e.url))

    def __len__(self) -> int:
        return len(self._entries)


class _HeapPolicy(ReplacementPolicy):
    """Min-of-a-key policy backed by a lazy-invalidation heap.

    The heap holds ``(key, url)`` pairs; ``_current`` maps each tracked
    URL to its *latest* pushed key.  A heap item whose key no longer
    matches ``_current`` is stale and skipped (popped) during victim
    selection.  Because the entry fields a key reads (``access_count``,
    ``last_access``) only mutate immediately before an ``on_access``
    notification, ``_current`` always reflects live field values, and the
    heap minimum over non-stale items equals the scan minimum of
    ``(key(e), e.url)`` — identical victims, identical tie-breaking.

    The heap is compacted (rebuilt from ``_current``) once stale items
    dominate, bounding it at O(live entries).
    """

    #: Entry fields changed by ``on_access`` feed the key, so each access
    #: pushes a fresh item.  Subclasses with immutable keys override.
    _key_mutates_on_access = True

    def __init__(self):
        self._entries: Dict[str, CacheEntry] = {}
        self._current: Dict[str, tuple] = {}
        self._heap: list = []  # (key, url); stale items skipped lazily

    def _key(self, entry: CacheEntry):
        raise NotImplementedError

    def _push(self, entry: CacheEntry) -> None:
        key = self._key(entry)
        self._current[entry.url] = key
        heapq.heappush(self._heap, (key, entry.url))
        if len(self._heap) > 2 * len(self._entries) + 64:
            self._compact()

    def _compact(self) -> None:
        self._heap = [(key, url) for url, key in self._current.items()]
        heapq.heapify(self._heap)

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._entries[entry.url] = entry
        self._push(entry)

    def on_access(self, entry: CacheEntry, now: float) -> None:
        if self._key_mutates_on_access and entry.url in self._entries:
            self._push(entry)

    def on_remove(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.url, None)
        self._current.pop(entry.url, None)

    def victim(self) -> CacheEntry:
        heap = self._heap
        current = self._current
        while heap:
            key, url = heap[0]
            live = current.get(url)
            if live is None or live != key:
                heapq.heappop(heap)  # stale
                continue
            return self._entries[url]
        raise LookupError(f"empty {self.name} policy")

    def __len__(self) -> int:
        return len(self._entries)


class _LFUKey:
    _key_mutates_on_access = True

    def _key(self, entry: CacheEntry):
        return (entry.access_count, entry.last_access)


class _SizeKey:
    _key_mutates_on_access = True

    def _key(self, entry: CacheEntry):
        return (-entry.size, entry.last_access)


class _CostKey:
    _key_mutates_on_access = True

    def _key(self, entry: CacheEntry):
        return (entry.exec_time, entry.last_access)


class _FIFOKey:
    _key_mutates_on_access = False  # insertion time never changes

    def _key(self, entry: CacheEntry):
        return entry.created


class LFUPolicy(_LFUKey, _HeapPolicy):
    """Evict the entry with the fewest accesses (recency breaks ties)."""

    name = "lfu"


class SizePolicy(_SizeKey, _HeapPolicy):
    """Evict the largest entry first (negated size as the minimum key)."""

    name = "size"


class CostPolicy(_CostKey, _HeapPolicy):
    """Evict the entry that is cheapest to re-execute."""

    name = "cost"


class FIFOPolicy(_FIFOKey, _HeapPolicy):
    """Evict the oldest insertion."""

    name = "fifo"


class ScanLFUPolicy(_LFUKey, _ScanPolicy):
    """O(n) reference for :class:`LFUPolicy`."""

    name = "lfu-scan"


class ScanSizePolicy(_SizeKey, _ScanPolicy):
    """O(n) reference for :class:`SizePolicy`."""

    name = "size-scan"


class ScanCostPolicy(_CostKey, _ScanPolicy):
    """O(n) reference for :class:`CostPolicy`."""

    name = "cost-scan"


class ScanFIFOPolicy(_FIFOKey, _ScanPolicy):
    """O(n) reference for :class:`FIFOPolicy`."""

    name = "fifo-scan"


class GreedyDualSizePolicy(ReplacementPolicy):
    """GreedyDual-Size (Cao & Irani, USITS '97) with cost = exec time.

    Each entry carries credit ``H = L + cost / size``; hits refresh the
    credit; eviction takes the minimum ``H`` and raises the inflation
    floor ``L`` to it.  Implemented with a heap and lazy invalidation
    (compacted like :class:`_HeapPolicy` so stale items cannot pile up).
    """

    name = "gds"

    def __init__(self):
        self._h: Dict[str, float] = {}
        self._entries: Dict[str, CacheEntry] = {}
        self._heap: list = []  # (H, url)
        self.inflation = 0.0  # L

    def _credit(self, entry: CacheEntry) -> float:
        size = max(entry.size, 1)
        return self.inflation + entry.exec_time / size

    def _push(self, entry: CacheEntry) -> None:
        h = self._credit(entry)
        self._h[entry.url] = h
        self._entries[entry.url] = entry
        heapq.heappush(self._heap, (h, entry.url))
        if len(self._heap) > 2 * len(self._entries) + 64:
            self._heap = [(h, url) for url, h in self._h.items()]
            heapq.heapify(self._heap)

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._push(entry)

    def on_access(self, entry: CacheEntry, now: float) -> None:
        if entry.url in self._entries:
            self._push(entry)  # refresh credit; stale heap items are skipped

    def on_remove(self, entry: CacheEntry) -> None:
        self._h.pop(entry.url, None)
        self._entries.pop(entry.url, None)

    def victim(self) -> CacheEntry:
        while self._heap:
            h, url = self._heap[0]
            current = self._h.get(url)
            if current is None or current != h:
                heapq.heappop(self._heap)  # stale
                continue
            self.inflation = h
            return self._entries[url]
        raise LookupError("empty GreedyDual-Size policy")

    def __len__(self) -> int:
        return len(self._entries)


_POLICIES = {
    cls.name: cls
    for cls in (
        LRUPolicy,
        LFUPolicy,
        SizePolicy,
        CostPolicy,
        GreedyDualSizePolicy,
        FIFOPolicy,
    )
}

POLICY_NAMES = tuple(sorted(_POLICIES))

#: Scan-reference twins, addressable through :func:`make_policy` for
#: differential tests and A/B benchmarks but deliberately *not* part of
#: :data:`POLICY_NAMES` (experiments sweep only the canonical policies).
_SCAN_POLICIES = {
    cls.name: cls
    for cls in (ScanLFUPolicy, ScanSizePolicy, ScanCostPolicy, ScanFIFOPolicy)
}

SCAN_POLICY_NAMES = tuple(sorted(_SCAN_POLICIES))


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (see ``POLICY_NAMES``)."""
    cls = _POLICIES.get(name) or _SCAN_POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES + SCAN_POLICY_NAMES}"
        )
    return cls()
