"""Cache replacement policies.

The paper implements five replacement methods in Swala (§3 refers to the
companion technical report; the dimensions it names are "execution time,
access frequency, time of access, size etc.").  We provide the five natural
instantiations plus the GreedyDual-Size policy of Cao & Irani — the
cost-aware algorithm the paper cites as related work ([5]):

* ``LRU``   — evict the least recently used entry;
* ``LFU``   — evict the least frequently used entry;
* ``SIZE``  — evict the largest entry (keep many small results);
* ``COST``  — evict the cheapest-to-regenerate entry (lowest exec time);
* ``GDS``   — GreedyDual-Size with cost = exec time (combines recency,
  regeneration cost and size);
* ``FIFO``  — evict the oldest insertion (baseline).

All policies expose the same three hooks so the store can drive them
uniformly; ties break on the URL for determinism.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Optional

from .entry import CacheEntry

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "SizePolicy",
    "CostPolicy",
    "GreedyDualSizePolicy",
    "FIFOPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class ReplacementPolicy:
    """Interface: notified of inserts/accesses/removals, picks victims."""

    name = "abstract"

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        raise NotImplementedError

    def on_access(self, entry: CacheEntry, now: float) -> None:
        raise NotImplementedError

    def on_remove(self, entry: CacheEntry) -> None:
        raise NotImplementedError

    def victim(self) -> CacheEntry:
        """The entry to evict next.  Undefined when the policy is empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} tracking={len(self)}>"


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, O(1) via an ordered dict."""

    name = "lru"

    def __init__(self):
        self._order: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._order[entry.url] = entry
        self._order.move_to_end(entry.url)

    def on_access(self, entry: CacheEntry, now: float) -> None:
        self._order.move_to_end(entry.url)

    def on_remove(self, entry: CacheEntry) -> None:
        self._order.pop(entry.url, None)

    def victim(self) -> CacheEntry:
        url = next(iter(self._order))
        return self._order[url]

    def __len__(self) -> int:
        return len(self._order)


class _ScanPolicy(ReplacementPolicy):
    """Base for policies that pick the minimum of a key over all entries.

    O(n) victim selection; Swala's caches are directory-limited (hundreds
    to low thousands of entries), so a scan is simpler than maintaining an
    index and plenty fast.
    """

    def __init__(self):
        self._entries: Dict[str, CacheEntry] = {}

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._entries[entry.url] = entry

    def on_access(self, entry: CacheEntry, now: float) -> None:
        pass

    def on_remove(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.url, None)

    def _key(self, entry: CacheEntry):
        raise NotImplementedError

    def victim(self) -> CacheEntry:
        return min(self._entries.values(), key=lambda e: (self._key(e), e.url))

    def __len__(self) -> int:
        return len(self._entries)


class LFUPolicy(_ScanPolicy):
    """Evict the entry with the fewest accesses (recency breaks ties)."""

    name = "lfu"

    def _key(self, entry: CacheEntry):
        return (entry.access_count, entry.last_access)


class SizePolicy(_ScanPolicy):
    """Evict the largest entry first (negated size as the minimum key)."""

    name = "size"

    def _key(self, entry: CacheEntry):
        return (-entry.size, entry.last_access)


class CostPolicy(_ScanPolicy):
    """Evict the entry that is cheapest to re-execute."""

    name = "cost"

    def _key(self, entry: CacheEntry):
        return (entry.exec_time, entry.last_access)


class FIFOPolicy(_ScanPolicy):
    """Evict the oldest insertion."""

    name = "fifo"

    def _key(self, entry: CacheEntry):
        return entry.created


class GreedyDualSizePolicy(ReplacementPolicy):
    """GreedyDual-Size (Cao & Irani, USITS '97) with cost = exec time.

    Each entry carries credit ``H = L + cost / size``; hits refresh the
    credit; eviction takes the minimum ``H`` and raises the inflation
    floor ``L`` to it.  Implemented with a heap and lazy invalidation.
    """

    name = "gds"

    def __init__(self):
        self._h: Dict[str, float] = {}
        self._entries: Dict[str, CacheEntry] = {}
        self._heap: list = []  # (H, url)
        self.inflation = 0.0  # L

    def _credit(self, entry: CacheEntry) -> float:
        size = max(entry.size, 1)
        return self.inflation + entry.exec_time / size

    def _push(self, entry: CacheEntry) -> None:
        h = self._credit(entry)
        self._h[entry.url] = h
        self._entries[entry.url] = entry
        heapq.heappush(self._heap, (h, entry.url))

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._push(entry)

    def on_access(self, entry: CacheEntry, now: float) -> None:
        if entry.url in self._entries:
            self._push(entry)  # refresh credit; stale heap items are skipped

    def on_remove(self, entry: CacheEntry) -> None:
        self._h.pop(entry.url, None)
        self._entries.pop(entry.url, None)

    def victim(self) -> CacheEntry:
        while self._heap:
            h, url = self._heap[0]
            current = self._h.get(url)
            if current is None or current != h:
                heapq.heappop(self._heap)  # stale
                continue
            self.inflation = h
            return self._entries[url]
        raise LookupError("empty GreedyDual-Size policy")

    def __len__(self) -> int:
        return len(self._entries)


_POLICIES = {
    cls.name: cls
    for cls in (
        LRUPolicy,
        LFUPolicy,
        SizePolicy,
        CostPolicy,
        GreedyDualSizePolicy,
        FIFOPolicy,
    )
}

POLICY_NAMES = tuple(sorted(_POLICIES))


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (see ``POLICY_NAMES``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
