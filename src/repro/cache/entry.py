"""Cache entry metadata (what Swala keeps in its in-memory directory)."""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CacheEntry"]


@dataclass(slots=True)
class CacheEntry:
    """Meta-data for one cached CGI result.

    The result body itself lives in a per-entry file on the owner node's
    filesystem (``file_path``); only this record is replicated into peer
    directories.  Slotted: entries are minted on every insert, replica,
    and directory update, so instance dicts are measurable overhead.
    """

    url: str
    owner: str
    size: int
    exec_time: float
    created: float
    ttl: float = math.inf
    file_path: str = ""
    access_count: int = 0
    last_access: float = field(default=-math.inf)

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative entry size for {self.url!r}")
        if self.exec_time < 0:
            raise ValueError(f"negative exec time for {self.url!r}")
        if self.ttl <= 0:
            raise ValueError(f"TTL must be positive for {self.url!r}")
        # Intern the URL: entries for the same URL are created over and
        # over (inserts, replicas, directory updates), and every store /
        # directory / policy structure keys on it.  Interned keys make
        # those dict hits pointer comparisons.
        self.url = sys.intern(self.url)
        if not self.file_path:
            self.file_path = f"/cache/{abs(hash(self.url)) :x}-{self.owner}"
        if self.last_access == -math.inf:
            self.last_access = self.created

    @property
    def expires_at(self) -> float:
        return self.created + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def touch(self, now: float) -> None:
        """Record a hit (the owner updates meta-data after each fetch)."""
        self.access_count += 1
        self.last_access = now

    def replica(self) -> "CacheEntry":
        """A copy suitable for installing in a peer's directory table."""
        return CacheEntry(
            url=self.url,
            owner=self.owner,
            size=self.size,
            exec_time=self.exec_time,
            created=self.created,
            ttl=self.ttl,
            file_path=self.file_path,
            access_count=self.access_count,
            last_access=self.last_access,
        )
