"""The local cache store: entry files on disk + replacement policy.

Swala stores each cached result in its own OS file and keeps only the
directory in memory; the cache is limited by a maximum entry count (the
paper's hit-ratio experiments use "cache size 2000" and "cache size 20",
counted in entries).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hosts import FileSystem
from .entry import CacheEntry
from .policies import ReplacementPolicy, make_policy

__all__ = ["CacheStore"]


class CacheStore:
    """Entry-count-bounded result store on one node."""

    def __init__(
        self,
        fs: FileSystem,
        capacity: int,
        policy: str = "lru",
        owner: str = "",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.fs = fs
        self.capacity = capacity
        self.owner = owner
        self.policy: ReplacementPolicy = make_policy(policy)
        self._entries: Dict[str, CacheEntry] = {}
        self.insertions = 0
        self.evictions = 0
        self.expirations = 0

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def get(self, url: str) -> Optional[CacheEntry]:
        return self._entries.get(url)

    def entries(self) -> List[CacheEntry]:
        return list(self._entries.values())

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    # -- mutation -----------------------------------------------------------
    def insert(self, entry: CacheEntry, now: float) -> List[CacheEntry]:
        """Add ``entry``; returns the entries evicted to make room.

        The result file is created in the buffer cache (the CGI just wrote
        it); the caller is responsible for charging the write CPU cost and
        for broadcasting the insert + any eviction deletes.
        """
        evicted: List[CacheEntry] = []
        entries = self._entries
        policy = self.policy
        if entry.url in entries:
            # Re-insert (e.g. refresh after expiry): replace in place.
            self._remove(entries[entry.url])
        while len(entries) >= self.capacity:
            victim = policy.victim()
            self._remove(victim)
            evicted.append(victim)
            self.evictions += 1
        entries[entry.url] = entry
        policy.on_insert(entry, now)
        self.fs.create_warm(entry.file_path, entry.size)  # the tee just wrote it
        self.insertions += 1
        return evicted

    def record_access(self, url: str, now: float) -> None:
        """Owner-side meta-data update after a successful fetch."""
        entry = self._entries.get(url)
        if entry is None:
            raise KeyError(f"no entry for {url!r} on {self.owner!r}")
        entry.touch(now)
        self.policy.on_access(entry, now)

    def remove(self, url: str) -> Optional[CacheEntry]:
        entry = self._entries.get(url)
        if entry is not None:
            self._remove(entry)
        return entry

    def _remove(self, entry: CacheEntry) -> None:
        del self._entries[entry.url]
        self.policy.on_remove(entry)
        self.fs.unlink_if_exists(entry.file_path)

    def expired_entries(self, now: float) -> List[CacheEntry]:
        return [e for e in self._entries.values() if e.expired(now)]

    def purge_expired(self, now: float) -> List[CacheEntry]:
        """Drop every expired entry; returns what was purged."""
        purged = self.expired_entries(now)
        for entry in purged:
            self._remove(entry)
            self.expirations += 1
        return purged

    def __repr__(self) -> str:
        return (
            f"<CacheStore owner={self.owner!r} {len(self._entries)}/{self.capacity} "
            f"policy={self.policy.name}>"
        )
