"""Cache substrate: entries, replacement policies, and the on-disk store."""

from .entry import CacheEntry
from .policies import (
    POLICY_NAMES,
    SCAN_POLICY_NAMES,
    CostPolicy,
    FIFOPolicy,
    GreedyDualSizePolicy,
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    SizePolicy,
    make_policy,
)
from .store import CacheStore

__all__ = [
    "CacheEntry",
    "CacheStore",
    "ReplacementPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "SizePolicy",
    "CostPolicy",
    "GreedyDualSizePolicy",
    "FIFOPolicy",
    "make_policy",
    "POLICY_NAMES",
    "SCAN_POLICY_NAMES",
]
