"""Parallel parameter sweeps over experiment configurations.

Simulation runs are single-threaded and deterministic, so sweeps
(node-count x policy x seed grids) are embarrassingly parallel across
*processes*.  This module expands parameter grids deterministically and
fans the runs out over a process pool, returning results in grid order so
a parallel sweep is bit-identical to a serial one.

Typical use::

    from repro.parallel import run_grid
    from repro.experiments import run_hit_ratio_experiment

    results = run_grid(
        my_experiment_fn,              # top-level callable (picklable)
        {"cache_size": [20, 200, 2000], "seed": [0, 1, 2]},
        n_workers=4,
    )
    for r in results:
        print(r.params, r.value)
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["GridResult", "expand_grid", "run_grid", "map_parallel"]


@dataclass(frozen=True)
class GridResult:
    """One grid cell: the parameters used, the return value, wall time."""

    params: Dict[str, Any]
    value: Any
    elapsed: float


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of the grid in deterministic (insertion) order."""
    if not grid:
        return [{}]
    keys = list(grid)
    for key in keys:
        if not isinstance(grid[key], (list, tuple)):
            raise TypeError(f"grid value for {key!r} must be a list/tuple")
        if not grid[key]:
            raise ValueError(f"grid value for {key!r} is empty")
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]


def _init_worker(scheduler: str, partitions: int, backend: str) -> None:
    """Pool initializer: re-apply the parent's simulation-policy knobs.

    The default event-scheduler and the ``--parallel-sim`` partitioning
    are process-global state (see :mod:`repro.sim.queues` /
    :mod:`repro.sim.pdes`), so worker processes must receive them by
    value — an experiment sharded over ``--jobs`` then builds the same
    simulators the serial run would.
    """
    from .sim import set_default_scheduler
    from .sim.pdes import set_sim_partitions

    set_default_scheduler(scheduler)
    set_sim_partitions(partitions, backend)


def _pool(n_workers: int) -> ProcessPoolExecutor:
    from .sim import default_scheduler
    from .sim.pdes import sim_partitions

    partitions, backend = sim_partitions()
    return ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(default_scheduler(), partitions, backend),
    )


def _call_cell(payload):
    fn, params = payload
    start = time.perf_counter()
    value = fn(**params)
    return value, time.perf_counter() - start


def run_grid(
    fn: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    n_workers: Optional[int] = None,
) -> List[GridResult]:
    """Run ``fn(**params)`` for every grid cell; results in grid order.

    ``fn`` must be a module-level (picklable) callable.  ``n_workers`` <= 1
    runs serially in-process (useful for debugging); ``None`` uses the CPU
    count capped at the number of cells.
    """
    cells = expand_grid(grid)
    if n_workers is None:
        n_workers = min(len(cells), os.cpu_count() or 1)
    payloads = [(fn, params) for params in cells]
    if n_workers <= 1:
        outcomes = [_call_cell(p) for p in payloads]
    else:
        with _pool(n_workers) as pool:
            outcomes = list(pool.map(_call_cell, payloads))
    return [
        GridResult(params=params, value=value, elapsed=elapsed)
        for params, (value, elapsed) in zip(cells, outcomes)
    ]


def map_parallel(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    n_workers: Optional[int] = None,
) -> List[Any]:
    """Order-preserving parallel map over ``items`` (processes)."""
    items = list(items)
    if not items:
        return []
    if n_workers is None:
        n_workers = min(len(items), os.cpu_count() or 1)
    if n_workers <= 1:
        return [fn(item) for item in items]
    with _pool(n_workers) as pool:
        return list(pool.map(fn, items))
