"""Filesystem with an OS buffer cache.

The paper's design leans on UNIX file-system caching: Swala stores each
cached CGI result in its own file and expects "any recently used,
reasonably-sized file to be available in memory".  We therefore model an
LRU buffer cache over file blocks: reads of hot files cost only copy CPU,
cold reads pay the disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, Tuple

from ..sim import Simulator
from .costs import MachineCosts
from .disk import Disk

__all__ = ["FileSystem", "FileNotFound"]


class FileNotFound(KeyError):
    """Raised when reading a path that was never written."""


class FileSystem:
    """Named files + a block-granular LRU buffer cache in front of a disk."""

    def __init__(self, sim: Simulator, costs: MachineCosts, disk: Disk, name: str = "fs"):
        self.sim = sim
        self.costs = costs
        self.disk = disk
        self.name = name
        self._files: Dict[str, int] = {}  # path -> size in bytes
        self._mtimes: Dict[str, float] = {}  # path -> last modification time
        self._cache: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        #: costs is frozen, so the block size can be cached off the
        #: attribute chain (``_nblocks`` runs on every create/read/unlink).
        self._block_size = costs.disk.block_size
        self._capacity_blocks = max(
            1, costs.buffer_cache_bytes // costs.disk.block_size
        )
        self.cache_hits = 0
        self.cache_misses = 0

    # -- namespace --------------------------------------------------------
    def create(self, path: str, size: int) -> None:
        """Create or overwrite a file of ``size`` bytes (metadata only)."""
        if size < 0:
            raise ValueError(f"negative file size {size}")
        self._files[path] = size
        self._mtimes[path] = self.sim.now

    def mtime(self, path: str) -> float:
        """Last modification time (the source-monitor's stat() view)."""
        try:
            return self._mtimes[path]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def size_of(self, path: str) -> int:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def unlink(self, path: str) -> None:
        if not self.unlink_if_exists(path):
            raise FileNotFound(path)

    def unlink_if_exists(self, path: str) -> bool:
        """Remove ``path`` if present; returns whether it existed.  (The
        cache store's eviction path calls this once per victim — a
        separate exists() probe would double the dict lookups.)"""
        size = self._files.pop(path, None)
        if size is None:
            return False
        del self._mtimes[path]
        cache = self._cache
        for i in range(self._nblocks(size)):
            cache.pop((path, i), None)
        return True

    @property
    def file_count(self) -> int:
        return len(self._files)

    # -- block cache --------------------------------------------------------
    def _nblocks(self, size: int) -> int:
        if size <= 0:
            return 1  # even empty files own a block
        return -(-size // self._block_size)  # ceil

    def _touch(self, key: Tuple[str, int]) -> bool:
        """LRU lookup; returns True on hit."""
        if key in self._cache:
            self._cache.move_to_end(key)
            return True
        return False

    def _insert(self, key: Tuple[str, int]) -> None:
        self._cache[key] = None
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity_blocks:
            self._cache.popitem(last=False)

    def cached_fraction(self, path: str) -> float:
        """Fraction of a file's blocks currently resident (for tests/metrics)."""
        size = self.size_of(path)
        nblocks = self._nblocks(size)
        resident = sum(1 for i in range(nblocks) if (path, i) in self._cache)
        return resident / nblocks

    # -- I/O ----------------------------------------------------------------
    def read(self, path: str) -> Generator:
        """Process: read a whole file; returns bytes that came from disk.

        Charges disk time for missing blocks (coalesced into one contiguous
        access per miss-run, which is how the FS read-ahead behaves for the
        sequential whole-file reads the web server issues).
        """
        size = self.size_of(path)
        nblocks = self._nblocks(size)
        bs = self.costs.disk.block_size
        missing = 0
        for i in range(nblocks):
            key = (path, i)
            if self._touch(key):
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                missing += 1
                self._insert(key)
        disk_bytes = 0
        if missing:
            disk_bytes = min(size, missing * bs)
            yield from self.disk.read(disk_bytes)
        return disk_bytes

    def write(self, path: str, size: int) -> Generator:
        """Process: create/overwrite ``path``; contents land in the buffer
        cache (write-back — the flush is asynchronous and uncharged, like
        the UNIX update daemon)."""
        self.create(path, size)
        for i in range(self._nblocks(size)):
            self._insert((path, i))
        return
        yield  # pragma: no cover - makes this a generator

    def warm(self, path: str) -> None:
        """Pull a file wholly into the buffer cache without charging time."""
        size = self.size_of(path)
        cache = self._cache
        for i in range(self._nblocks(size)):
            key = (path, i)
            cache[key] = None
            cache.move_to_end(key)
        while len(cache) > self._capacity_blocks:
            cache.popitem(last=False)

    def create_warm(self, path: str, size: int) -> None:
        """``create`` + ``warm`` in one call (the cache-store insert path:
        the tee just wrote the result file, so its blocks are hot).
        Behaviorally identical to calling the two methods in sequence."""
        if size < 0:
            raise ValueError(f"negative file size {size}")
        self._files[path] = size
        self._mtimes[path] = self.sim.now
        cache = self._cache
        for i in range(self._nblocks(size)):
            key = (path, i)
            cache[key] = None
            cache.move_to_end(key)
        while len(cache) > self._capacity_blocks:
            cache.popitem(last=False)

    def __repr__(self) -> str:
        return (
            f"<FileSystem {self.name!r} files={len(self._files)} "
            f"cached_blocks={len(self._cache)}/{self._capacity_blocks}>"
        )
