"""Calibrated service-time constants for the simulated workstations.

Every constant is tied to a statistic reported in the paper (HPDC '98 §3,
§5) or to well-known mid-1990s UNIX magnitudes.  The defaults model a
~143 MHz Sun Ultra 1 running Solaris:

* average *file fetch* response time on the lightly loaded ADL server was
  **0.03 s** -> accept + parse + open + buffer-cache read of a few KB plus a
  disk access for cold files lands in that range;
* average *CGI* response time was **1.6 s**, "two orders of magnitude"
  above a file fetch, dominated by the script body, not the fork;
* the null-CGI experiment shows fork+exec of a trivial CGI costs on the
  order of **tens of milliseconds** of CPU, an order of magnitude above a
  cache fetch, which is why caching pays off even for shortish CGIs;
* remote-fetch minus local-fetch is a small, roughly constant network
  round-trip + copy cost (paper: ~0.09 s under a 24-client overload, i.e.
  ~4 ms of actual per-request work).

Experiments must take costs from here (or an explicit override) — never
hard-code times — so the calibration is auditable in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["MachineCosts", "DiskParams", "SUN_ULTRA1"]


@dataclass(frozen=True)
class DiskParams:
    """Seek-dominated mid-90s SCSI disk."""

    #: Average positioning time (seek + rotational latency), seconds.
    access_time: float = 0.008
    #: Sustained transfer rate, bytes/second (~8 MB/s).
    transfer_rate: float = 8e6
    #: Filesystem block size, bytes.
    block_size: int = 8192

    def read_time(self, nbytes: int) -> float:
        """Service time for one contiguous read of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.access_time + nbytes / self.transfer_rate


@dataclass(frozen=True)
class MachineCosts:
    """CPU-time constants (seconds of CPU demand, not wall time)."""

    #: Number of processors on the machine.
    ncpus: int = 1
    #: Uniform CPU speed handicap: every CPU demand (including CGI script
    #: bodies) is multiplied by this.  2.0 models a machine half as fast as
    #: the reference Ultra 1; 0.5 one twice as fast.
    cpu_slowdown: float = 1.0

    #: Accept a TCP connection and parse an HTTP request line + headers.
    accept_parse_cpu: float = 0.0015
    #: Dispatch work to an existing thread in a pool (Swala, Enterprise).
    thread_dispatch_cpu: float = 0.0002
    #: fork() a new server process per connection (NCSA HTTPd model).
    process_fork_cpu: float = 0.012
    #: fork()+exec() of a CGI program plus environment setup and the
    #: request/response pipe plumbing.  This is what caching a CGI saves
    #: even when the script body is empty (paper Fig. 3).
    cgi_fork_exec_cpu: float = 0.030
    #: Generic system-call overhead (open/close/stat).
    syscall_cpu: float = 0.00005
    #: Copy cost per byte for a read()-based send path.
    copy_per_byte_cpu: float = 25e-9
    #: Copy cost per byte when the file is memory-mapped (Swala path);
    #: mmap eliminates double buffering, so this is much cheaper.
    mmap_per_byte_cpu: float = 8e-9
    #: Per-byte CPU cost of pushing data through the TCP stack.
    net_send_per_byte_cpu: float = 10e-9
    #: Writing CGI output to the cache file ("tee" in Fig. 2).
    cache_write_per_byte_cpu: float = 12e-9
    #: Insert/update/delete one entry in the in-memory cache directory.
    directory_update_cpu: float = 0.0001
    #: Look a request up in one node's directory table.
    directory_lookup_cpu: float = 0.00008
    #: Build + send one directory broadcast message (per peer).
    broadcast_per_peer_cpu: float = 0.00015
    #: Probe one peer's summary indicator (digest set / Bloom filter)
    #: during a lookup sweep — a few hashes + memory reads, far below a
    #: full table scan.
    indicator_probe_cpu: float = 1e-6
    #: Build or apply one entry of a cache digest (hash + append).
    digest_cpu_per_entry: float = 2e-7
    #: Requester-side cost of one remote cache fetch: TCP connection setup
    #: to the peer, request marshalling, and reply demultiplexing.  This is
    #: why a remote fetch stays measurably slower than a local one even
    #: though the file read runs on the (otherwise idle) owner.
    remote_fetch_cpu: float = 0.0025
    #: One mutex/rwlock acquire+release pair (drives the entry-granularity
    #: locking ablation of §4.2, where a lookup performs O(table size) lock
    #: operations).
    lock_op_cpu: float = 2e-6

    #: OS buffer cache available for file data, bytes (64 MB machines; most
    #: of RAM after the server + OS takes its share).
    buffer_cache_bytes: int = 32 * 1024 * 1024

    disk: DiskParams = field(default_factory=DiskParams)

    def with_(self, **kw) -> "MachineCosts":
        """A copy with selected fields replaced (keeps calibration audit trail)."""
        return replace(self, **kw)


#: The default testbed machine (six Ultra 1s; the two Ultra 2s were pinned
#: to a single CPU during the paper's speedup runs, so one profile suffices).
SUN_ULTRA1 = MachineCosts()
