"""Workstation model: CPU bank, OS cost constants, disk, buffer-cached FS."""

from .costs import SUN_ULTRA1, DiskParams, MachineCosts
from .disk import Disk
from .filesystem import FileNotFound, FileSystem
from .machine import Machine

__all__ = [
    "MachineCosts",
    "DiskParams",
    "SUN_ULTRA1",
    "Disk",
    "FileSystem",
    "FileNotFound",
    "Machine",
]
