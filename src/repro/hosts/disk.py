"""A FCFS disk device."""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator, Tally
from .costs import DiskParams

__all__ = ["Disk"]


class Disk:
    """One spindle: requests queue FCFS and hold the device for their
    positioning + transfer time."""

    def __init__(self, sim: Simulator, params: DiskParams, name: str = "disk"):
        self.sim = sim
        self.params = params
        self.name = name
        self._device = Resource(sim, capacity=1, name=name)
        self.reads = 0
        self.bytes_read = 0
        self.service_times = Tally(f"{name}.service", keep_samples=False)

    def read(self, nbytes: int) -> Generator:
        """Process: perform one contiguous read of ``nbytes``."""
        service = self.params.read_time(nbytes)
        req = self._device.request()
        yield req
        try:
            yield self.sim.timeout(service)
        finally:
            self._device.release(req)
        self.reads += 1
        self.bytes_read += nbytes
        self.service_times.observe(service)

    @property
    def device(self) -> Resource:
        """The underlying FCFS device resource (profiler attach point)."""
        return self._device

    @property
    def queue_length(self) -> int:
        return self._device.queue_length

    def __repr__(self) -> str:
        return f"<Disk {self.name!r} reads={self.reads}>"
