"""A simulated workstation: CPU bank + disk + filesystem + OS cost model."""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Event, ProcessorSharing, Simulator
from .costs import MachineCosts, SUN_ULTRA1
from .disk import Disk
from .filesystem import FileSystem

__all__ = ["Machine"]


class Machine:
    """One cluster node.

    All CPU demand funnels through one :class:`ProcessorSharing` bank, so
    request threads, CGI children, cache daemons, and protocol handlers all
    contend for the same processors — the paper's central premise is that
    the *CPU* is the bottleneck for dynamic-content sites.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        costs: Optional[MachineCosts] = None,
    ):
        self.sim = sim
        self.name = name
        self.costs = costs or SUN_ULTRA1
        self.cpu = ProcessorSharing(sim, ncpus=self.costs.ncpus, name=f"{name}.cpu")
        self.disk = Disk(sim, self.costs.disk, name=f"{name}.disk")
        self.fs = FileSystem(sim, self.costs, self.disk, name=f"{name}.fs")

    def attach_profiler(self, profiler) -> None:
        """Probe the node's CPU bank and disk device."""
        profiler.instrument(self.cpu)
        profiler.instrument(self.disk.device)

    # -- CPU helpers --------------------------------------------------------
    def compute(self, seconds: float, weight: float = 1.0) -> Event:
        """Submit ``seconds`` of reference-machine CPU demand; the event
        fires at completion (slower machines stretch the demand by their
        ``cpu_slowdown``)."""
        return self.cpu.execute(
            seconds * self.costs.cpu_slowdown, weight=weight
        )

    def accept_and_parse(self) -> Event:
        return self.compute(self.costs.accept_parse_cpu)

    def dispatch_thread(self) -> Event:
        return self.compute(self.costs.thread_dispatch_cpu)

    def fork_process(self) -> Event:
        return self.compute(self.costs.process_fork_cpu)

    def fork_exec_cgi(self) -> Event:
        return self.compute(self.costs.cgi_fork_exec_cpu)

    def send_bytes_cpu(self, nbytes: int) -> Event:
        """TCP-stack CPU cost of transmitting ``nbytes`` to a client."""
        return self.compute(self.costs.net_send_per_byte_cpu * nbytes)

    # -- file serving ---------------------------------------------------------
    def serve_file(self, path: str, mmap: bool = True) -> Generator:
        """Process: open + read a file for sending.

        Returns the file size.  ``mmap=False`` models a read()/write()
        server that pays the extra user-space copy (NCSA HTTPd); Swala and
        Enterprise use memory-mapped I/O.
        """
        yield self.compute(self.costs.syscall_cpu)  # open/stat
        size = self.fs.size_of(path)
        yield from self.fs.read(path)
        per_byte = (
            self.costs.mmap_per_byte_cpu if mmap else self.costs.copy_per_byte_cpu
        )
        yield self.compute(per_byte * size)
        return size

    def __repr__(self) -> str:
        return f"<Machine {self.name!r} load={self.cpu.load}>"
