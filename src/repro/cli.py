"""Command-line interface: regenerate any paper table/figure, run the
ablations, analyze real access logs, and synthesize workload traces.

Examples::

    python -m repro table1
    python -m repro figure4 --nodes 1 2 4 8 --scale 0.02
    python -m repro table5 --nodes 1 4 8
    python -m repro ablation invalidation
    python -m repro analyze-log access.log --thresholds 0.5 1 2
    python -m repro gen-trace zipf -n 1000 -d 150 -o trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from . import experiments as ex
from .workload import (
    PAPER_ADL,
    describe_trace,
    load_trace,
    render_trace_summary,
    analyze_caching_potential,
    generate_adl_trace,
    hit_ratio_trace,
    load_clf,
    save_trace,
    webstone_file_trace,
    zipf_cgi_trace,
)
from .metrics import render_table, write_rows

__all__ = ["main", "build_parser"]


def _emit(text: str, output: Optional[str]) -> None:
    try:
        print(text)
    except UnicodeEncodeError:
        # ASCII-only stdout (PYTHONIOENCODING=ascii, LANG=C pipes): degrade
        # residual glyphs rather than crash the report; --output files are
        # always written UTF-8 below, losslessly.
        encoding = getattr(sys.stdout, "encoding", None) or "ascii"
        print(text.encode(encoding, "replace").decode(encoding))
    if output:
        Path(output).write_text(text + "\n", encoding="utf-8")


def _export(rows, args) -> None:
    """Write structured rows if the command asked for --export."""
    export = getattr(args, "export", None)
    if export and rows is not None:
        write_rows(list(rows), export)
        print(f"(structured rows exported to {export})")


def _provenance_meta(args) -> dict:
    """The provenance manifest embedded in every ``--*-out`` export.

    Records what produced the artifact — seed, scheduler, directory
    protocol, shard layout (``--parallel-sim``/``--sim-backend``/
    ``--jobs``), a hash of the full argument set, and the repro version —
    so an export found on disk answers "which run was this?" without a
    lab notebook.  Output paths are excluded from the hash: the same run
    written to a different file must produce the same manifest (CI
    compares same-seed exports byte for byte).  No wall clock, hostname,
    or interpreter detail belongs here for the same reason.
    """
    import hashlib
    import json as _json

    from . import __version__

    knobs = {
        k: v for k, v in vars(args).items()
        if not callable(v)
        and k not in ("output", "export", "output_dir")
        and not k.endswith("_out")
    }
    config_hash = hashlib.sha256(
        _json.dumps(knobs, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:12]
    directory = getattr(args, "directory", None)
    if directory is None and getattr(args, "protocols", None):
        directory = ",".join(args.protocols)
    return {
        "version": __version__,
        "command": getattr(args, "command", None),
        "seed": getattr(args, "seed", None),
        "scheduler": getattr(args, "scheduler", None) or "heap",
        "directory": directory,
        "parallel_sim": getattr(args, "parallel_sim", None),
        "sim_backend": getattr(args, "sim_backend", None) or "auto",
        "jobs": getattr(args, "jobs", None),
        "config_hash": config_hash,
    }


@contextmanager
def _observability(args):
    """Install a run observer when ``--trace-out``/``--metrics-out``/
    ``--audit-out``/``--timeseries-out``/``--profile-out``/
    ``--critical-out`` ask for one; write the collected artifacts once
    the command finishes."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    audit_out = getattr(args, "audit_out", None)
    timeseries_out = getattr(args, "timeseries_out", None)
    profile_out = getattr(args, "profile_out", None)
    critical_out = getattr(args, "critical_out", None)
    streaming_out = getattr(args, "streaming_out", None)
    if (
        not trace_out and not metrics_out and not audit_out
        and not timeseries_out and not profile_out and not critical_out
        and not streaming_out
    ):
        yield None
        return
    from .experiments.common import RunObserver, observe_runs
    from .obs import (
        ConsistencyOracle,
        MetricsRegistry,
        ResourceProfiler,
        StreamingTelemetry,
        TimeSeriesLog,
        TraceCollector,
    )

    # --critical-out needs the span tree AND span-linked resource
    # intervals; --profile-out alone keeps interval recording off so its
    # export stays byte-compatible with committed baselines.
    profiler = None
    if critical_out:
        profiler = ResourceProfiler(record_intervals=True)
    elif profile_out:
        profiler = ResourceProfiler()
    observer = RunObserver(
        tracer=TraceCollector() if (trace_out or critical_out) else None,
        registry=MetricsRegistry() if metrics_out else None,
        oracle=ConsistencyOracle() if audit_out else None,
        timeseries=TimeSeriesLog() if timeseries_out else None,
        timeseries_dt=getattr(args, "timeseries_dt", 1.0),
        profiler=profiler,
        streaming=StreamingTelemetry(
            window=getattr(args, "streaming_window", 1.0)
        ) if streaming_out else None,
    )
    with observe_runs(observer):
        yield observer
    observer.collect_all()
    meta = _provenance_meta(args)
    if trace_out:
        observer.tracer.write_jsonl(trace_out, meta=meta)
        note = ""
        if observer.tracer.dropped:
            note = f", {observer.tracer.dropped} dropped at capacity"
        print(
            f"(trace: {len(observer.tracer.spans)} spans written to "
            f"{trace_out}{note})"
        )
    if metrics_out:
        observer.registry.write(metrics_out, meta=meta)
        print(f"(metrics written to {metrics_out})")
    if audit_out:
        observer.oracle.write_jsonl(audit_out, meta=meta)
        note = ""
        if observer.oracle.dropped_records:
            note = f", {observer.oracle.dropped_records} dropped at capacity"
        print(
            f"(audit: {len(observer.oracle.audits)} requests written to "
            f"{audit_out}{note}; inspect with `repro audit`)"
        )
    if timeseries_out:
        observer.timeseries.write_jsonl(timeseries_out, meta=meta)
        print(
            f"(timeseries: {len(observer.timeseries.samples)} samples "
            f"written to {timeseries_out})"
        )
    if profile_out:
        observer.profiler.write_json(profile_out, meta=meta)
        note = ""
        if observer.profiler.dropped:
            note = f", {observer.profiler.dropped} probes dropped at capacity"
        print(
            f"(profile: {observer.profiler.resource_count()} resources "
            f"written to {profile_out}{note}; inspect with `repro profile`)"
        )
    if streaming_out:
        observer.streaming.write_jsonl(streaming_out, meta=meta)
        if observer.registry is not None:
            from .obs import collect_streaming

            collect_streaming(observer.registry, observer.streaming)
            observer.registry.write(metrics_out, meta=meta)
        flagged = sum(1 for w in observer.streaming.windows if w.saturated)
        print(
            f"(streaming: {len(observer.streaming.windows)} windows "
            f"({flagged} saturated) written to {streaming_out})"
        )
    if critical_out:
        from .obs import aggregate_blame, write_critical

        records = observer.critical_records()
        write_critical(aggregate_blame(records), critical_out, meta=meta)
        note = ""
        if observer.profiler.intervals_dropped:
            note = (
                f", {observer.profiler.intervals_dropped} intervals "
                "dropped at capacity"
            )
        print(
            f"(critical: {len(records)} requests decomposed into "
            f"{critical_out}{note}; inspect with `repro critical`)"
        )


# ---------------------------------------------------------------------------
# subcommand runners
# ---------------------------------------------------------------------------

def _cmd_table1(args) -> int:
    spec = PAPER_ADL if args.scale == 1.0 else PAPER_ADL.scaled(args.scale)
    result = ex.run_table1(spec, seed=args.seed)
    _emit(ex.render_table1(result), args.output)
    return 0


def _cmd_table2(args) -> int:
    rows = ex.run_table2(
        client_counts=tuple(args.clients),
        requests_per_client=args.requests_per_client,
        seed=args.seed,
        jobs=args.jobs,
    )
    _emit(ex.render_table2(rows), args.output)
    _export(rows, args)
    return 0


def _cmd_figure3(args) -> int:
    result = ex.run_figure3(
        n_clients=args.clients, requests_per_client=args.requests_per_client,
        jobs=args.jobs,
    )
    _emit(ex.render_figure3(result), args.output)
    return 0


def _cmd_figure4(args) -> int:
    rows = ex.run_figure4(
        node_counts=tuple(args.nodes), scale=args.scale, seed=args.seed,
        jobs=args.jobs,
    )
    _emit(ex.render_figure4(rows), args.output)
    _export(rows, args)
    return 0


def _cmd_table3(args) -> int:
    rows = ex.run_table3(
        node_counts=tuple(args.nodes), n_requests=args.requests,
        directory=args.directory,
    )
    _emit(ex.render_table3(rows), args.output)
    _export(rows, args)
    return 0


def _cmd_directory_grid(args) -> int:
    cells = ex.run_directory_grid(
        node_counts=tuple(args.nodes),
        protocols=tuple(args.protocols),
        mixes=tuple(args.mixes),
        n_threads=args.threads,
        scale=args.scale,
        seed=args.seed,
    )
    _emit(ex.render_directory_grid(cells), args.output)
    if args.json_out:
        import json as _json

        Path(args.json_out).write_text(
            _json.dumps(ex.grid_to_dicts(cells), indent=2) + "\n"
        )
        print(f"(cells written to {args.json_out})")
    _export(cells, args)
    return 0


def _cmd_table4(args) -> int:
    rows = ex.run_table4(update_rates=tuple(args.rates), n_requests=args.requests)
    _emit(ex.render_table4(rows), args.output)
    _export(rows, args)
    return 0


def _cmd_table5(args) -> int:
    rows = ex.run_table5(
        node_counts=tuple(args.nodes), seed=args.seed, jobs=args.jobs
    )
    _emit(ex.render_hit_ratio_table(rows, 2_000), args.output)
    return 0


def _cmd_table6(args) -> int:
    rows = ex.run_table6(
        node_counts=tuple(args.nodes), seed=args.seed, jobs=args.jobs
    )
    _emit(ex.render_hit_ratio_table(rows, 20), args.output)
    return 0


def _cmd_ablation(args) -> int:
    runners = {
        "policies": lambda: ex.render_policy_ablation(ex.run_policy_ablation()),
        "locking": lambda: ex.render_locking_ablation(ex.run_locking_ablation()),
        "ttl": lambda: ex.render_ttl_ablation(ex.run_ttl_ablation()),
        "invalidation": lambda: ex.render_invalidation_study(
            ex.run_invalidation_study()
        ),
        "balancer": lambda: ex.render_balancer_study(ex.run_balancer_study()),
        "threshold": lambda: ex.render_threshold_study(
            ex.run_threshold_study()
        ),
        "cache-size": lambda: ex.render_cache_size_study(
            ex.run_cache_size_study()
        ),
    }
    _emit(runners[args.which](), args.output)
    return 0


def _cmd_study(args) -> int:
    runners = {
        "proxy": lambda: ex.render_proxy_study(ex.run_proxy_study()),
        "capacity": lambda: ex.render_capacity_study(ex.run_capacity_study()),
        "heterogeneity": lambda: ex.render_heterogeneity_study(
            ex.run_heterogeneity_study()
        ),
    }
    _emit(runners[args.which](), args.output)
    return 0


def _cmd_capacity(args) -> int:
    """Adaptive saturation search: the knee rate per cluster size."""
    import json as _json

    from .experiments.capacity import (
        CapacityParams,
        render_knee_table,
        run_capacity_search,
        write_knee_report,
    )

    params = CapacityParams(
        nodes=tuple(args.nodes),
        mode=args.mode,
        window=args.window,
        duration=args.duration,
        start_rate=args.start_rate,
        max_rate=args.max_rate,
        growth=args.growth,
        precision=args.precision,
        max_probes=args.max_probes,
        slo_p99=args.slo_p99,
        max_rho=args.max_rho,
        queue_growth_frac=args.queue_growth_frac,
        consecutive=args.consecutive,
        warmup_windows=args.warmup_windows,
        n_distinct=args.distinct,
        cpu_time_mean=args.cpu_time,
        seed=args.seed,
    )
    windows: Optional[list] = (
        [] if (args.windows_out or args.dashboard) else None
    )
    cells = run_capacity_search(params, collect_windows=windows)
    text = render_knee_table(cells, params)
    if args.dashboard:
        from .obs import render_streaming_dashboard

        panels = []
        for cell in cells:
            knee_windows = [
                w for w in windows
                if w["cell"] == cell.nodes and w["phase"] == "knee"
            ]
            panels.append(render_streaming_dashboard(
                knee_windows,
                title=f"{cell.nodes} node(s) @ knee {cell.knee:.2f}/s",
            ))
        text = text + "\n\n" + "\n\n".join(panels)
    _emit(text, args.output)
    if args.windows_out:
        from .obs.ioutil import write_text

        lines = [
            _json.dumps(w, sort_keys=True, separators=(",", ":"))
            for w in windows
        ]
        write_text(
            args.windows_out, "\n".join(lines) + ("\n" if lines else "")
        )
        print(
            f"(capacity: {len(windows)} windows written to "
            f"{args.windows_out}; diff with `repro diff`)"
        )
    if args.json_out:
        write_knee_report(cells, params, args.json_out, args.txt_out)
        where = args.json_out + (
            f" and {args.txt_out}" if args.txt_out else ""
        )
        print(f"(knee report written to {where})")
    return 0


def _cmd_analyze_log(args) -> int:
    path = Path(args.logfile)
    if not path.exists():
        print(f"error: no such log file: {path}", file=sys.stderr)
        return 2
    trace = load_clf(
        path.read_text().splitlines(),
        default_cgi_time=args.default_cgi_time,
    )
    if not len(trace):
        print("error: no analyzable GET requests in the log", file=sys.stderr)
        return 2
    rows = analyze_caching_potential(trace, thresholds=args.thresholds)
    text = render_table(
        f"Caching potential for {path.name} ({len(trace)} requests, "
        f"{len(trace.cgi_only())} dynamic)",
        ["threshold (s)", "# long", "# repeats", "# uniq repeats",
         "saved (s)", "saved %"],
        [
            (r.threshold, r.long_requests, r.total_repeats, r.unique_repeats,
             r.time_saved, r.saved_percent)
            for r in rows
        ],
    )
    _emit(text, args.output)
    return 0


def _cmd_gen_trace(args) -> int:
    if args.kind == "adl":
        trace = generate_adl_trace(PAPER_ADL.scaled(args.scale), seed=args.seed)
    elif args.kind == "webstone":
        trace = webstone_file_trace(args.n, seed=args.seed)
    elif args.kind == "zipf":
        trace = zipf_cgi_trace(args.n, args.distinct, seed=args.seed)
    else:  # hit-ratio
        trace = hit_ratio_trace(total=args.n, unique=args.distinct, seed=args.seed)
    save_trace(trace, args.out)
    print(
        f"wrote {len(trace)} requests ({trace.unique_count} unique) "
        f"to {args.out}"
    )
    return 0


def _cmd_run_config(args) -> int:
    """Run a saved trace against a cluster built from a Swala config file."""
    from .clients import ClientFleet
    from .core import SwalaCluster, load_config
    from .sim import Simulator
    from .workload import describe_trace, render_trace_summary

    config_path = Path(args.configfile)
    trace_path = Path(args.trace)
    for path, what in ((config_path, "config"), (trace_path, "trace")):
        if not path.exists():
            print(f"error: no such {what} file: {path}", file=sys.stderr)
            return 2
    config = load_config(config_path)
    trace = load_trace(trace_path)
    if not len(trace):
        print("error: empty trace", file=sys.stderr)
        return 2

    sim = Simulator()
    cluster = SwalaCluster(sim, args.nodes, config)
    cluster.install_files(trace)
    from .experiments.common import current_observer

    observer = current_observer()
    if observer is not None:
        observer.attach(cluster)
    cluster.start()
    fleet = ClientFleet(
        sim, cluster.network, trace, servers=cluster.node_names,
        n_threads=args.clients, n_hosts=max(1, args.clients // 8),
    )
    times = fleet.run()
    if observer is not None:
        observer.collect(cluster)
    stats = cluster.stats()
    lines = [
        render_trace_summary(describe_trace(trace)),
        "",
        f"cluster: {args.nodes} node(s), mode={config.mode.value}, "
        f"capacity={config.cache_capacity}, policy={config.policy}",
        f"clients: {args.clients} closed-loop threads",
        "",
        f"mean response time: {times.mean:.4f}s   "
        f"p95: {times.percentile(95):.4f}s",
        f"hits: {stats.hits} (local {stats.local_hits}, remote "
        f"{stats.remote_hits})   misses: {stats.misses}   "
        f"hit ratio: {stats.hit_ratio:.1%}",
        f"false hits: {stats.false_hits}   false misses: "
        f"{stats.false_misses}   evictions: {stats.evictions}",
    ]
    _emit("\n".join(lines), args.output)
    return 0


def _cmd_trace(args) -> int:
    """Analyze a span-trace JSONL written with ``--trace-out``."""
    from .obs import (
        load_jsonl,
        render_breakdown,
        render_percentiles,
        render_timeline,
        render_trace_report,
        request_records,
    )

    path = Path(args.tracefile)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    # Lenient load: a trace truncated mid-write (killed run) still
    # analyzes; torn lines are skipped and reported.
    dump = load_jsonl(path, strict=False)
    if dump.skipped_lines:
        print(
            f"warning: skipped {dump.skipped_lines} malformed line(s) in "
            f"{path} (truncated trace?)",
            file=sys.stderr,
        )
    if not len(dump):
        print("error: no spans in the trace file", file=sys.stderr)
        return 2

    sections = []
    wants_specific = args.breakdown or args.percentiles or args.timeline
    if wants_specific:
        records = request_records(dump)
        if args.breakdown:
            sections.append(render_breakdown(records))
        if args.percentiles:
            sections.append(render_percentiles(records))
        if args.timeline:
            try:
                sections.append(
                    render_timeline(
                        dump, trace_id=args.trace_id, width=args.width
                    )
                )
            except KeyError:
                print(
                    f"error: no trace with id {args.trace_id} in {path}",
                    file=sys.stderr,
                )
                return 2
    else:
        sections.append(render_trace_report(dump))
    _emit("\n\n".join(sections), args.output)
    return 0


def _cmd_audit(args) -> int:
    """Render the consistency-audit report from an ``--audit-out`` file."""
    from .obs import (
        load_audit,
        load_timeseries,
        render_anomaly_timeline,
        render_audit_report,
        render_staleness,
        render_taxonomy,
        render_timeseries_dashboard,
    )

    path = Path(args.auditfile)
    if not path.exists():
        print(f"error: no such audit file: {path}", file=sys.stderr)
        return 2
    try:
        dump = load_audit(path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not len(dump):
        print("error: no request records in the audit file", file=sys.stderr)
        return 2

    sections = []
    wants_specific = args.taxonomy or args.staleness or args.timeline
    if wants_specific:
        if args.taxonomy:
            sections.append(render_taxonomy(dump))
        if args.staleness:
            sections.append(render_staleness(dump))
        if args.timeline:
            sections.append(render_anomaly_timeline(dump, bins=args.bins))
    else:
        sections.append(render_audit_report(dump, bins=args.bins))
    if args.timeseries:
        ts_path = Path(args.timeseries)
        if not ts_path.exists():
            print(f"error: no such timeseries file: {ts_path}", file=sys.stderr)
            return 2
        log = load_timeseries(ts_path)
        sections.append(
            render_timeseries_dashboard(log, series=args.series or None)
        )
    _emit("\n\n".join(sections), args.output)
    return 0


def _cmd_profile(args) -> int:
    """Bottleneck/utilization report from a ``--profile-out`` file, plus
    optional flame-graph folding of a span trace."""
    from .obs import (
        fold_spans,
        load_jsonl,
        load_profile,
        render_bottlenecks,
        render_profile_report,
        render_resources,
        write_folded,
    )
    from .metrics.ascii import flame_chart

    path = Path(args.profilefile)
    if not path.exists():
        print(f"error: no such profile file: {path}", file=sys.stderr)
        return 2
    try:
        profile = load_profile(path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    sections = []
    wants_specific = args.bottlenecks or args.resources
    if wants_specific:
        if args.bottlenecks:
            sections.append(render_bottlenecks(profile, run=args.run))
        if args.resources:
            sections.append(
                render_resources(
                    profile, run=args.run, node=args.node, top=args.top
                )
            )
    else:
        sections.append(
            render_profile_report(
                profile, run=args.run, node=args.node, top=args.top
            )
        )
    if args.trace:
        trace_path = Path(args.trace)
        if not trace_path.exists():
            print(f"error: no such trace file: {trace_path}", file=sys.stderr)
            return 2
        folded = fold_spans(load_jsonl(trace_path, strict=False))
        if args.folded_out:
            out = write_folded(folded, args.folded_out)
            print(
                f"(folded stacks written to {out}; feed to flamegraph.pl "
                "or speedscope)"
            )
        sections.append(flame_chart(folded, width=args.width))
    _emit("\n\n".join(sections), args.output)
    return 0


def _cmd_diff(args) -> int:
    """Compare two observability exports counter by counter."""
    from .obs import diff_counters, load_counters, render_diff

    base_path, cur_path = Path(args.baseline), Path(args.current)
    for path in (base_path, cur_path):
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
    try:
        base = load_counters(base_path)
        current = load_counters(cur_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deltas = diff_counters(
        base,
        current,
        threshold=args.threshold,
        abs_threshold=args.abs_threshold,
        ignore=args.ignore or (),
        only=args.only or (),
    )
    _emit(
        render_diff(
            deltas,
            base_label=str(base_path),
            current_label=str(cur_path),
            max_rows=args.max_rows,
        ),
        args.output,
    )
    return 1 if deltas else 0


def _cmd_critical(args) -> int:
    """Render the critical-path blame report from a ``--critical-out``
    aggregate (or recompute it from raw trace + profile exports)."""
    from .obs import (
        aggregate_blame,
        decompose,
        load_critical,
        load_jsonl,
        load_profile,
        render_by_outcome,
        render_critical_report,
        render_segments,
        write_critical,
    )

    if args.criticalfile:
        path = Path(args.criticalfile)
        if not path.exists():
            print(f"error: no such critical file: {path}", file=sys.stderr)
            return 2
        try:
            data = load_critical(path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.trace:
        trace_path = Path(args.trace)
        if not trace_path.exists():
            print(f"error: no such trace file: {trace_path}", file=sys.stderr)
            return 2
        intervals = None
        if args.profile:
            profile_path = Path(args.profile)
            if not profile_path.exists():
                print(
                    f"error: no such profile file: {profile_path}",
                    file=sys.stderr,
                )
                return 2
            try:
                intervals = load_profile(profile_path).get("intervals")
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        records = decompose(load_jsonl(trace_path, strict=False), intervals)
        data = aggregate_blame(records)
        if args.export:
            write_critical(data, args.export)
            print(f"(critical aggregate exported to {args.export})")
    else:
        print(
            "error: give a --critical-out file or --trace (with optional "
            "--profile)",
            file=sys.stderr,
        )
        return 2

    sections = []
    wants_specific = args.segments or args.by_outcome
    if wants_specific:
        if args.segments:
            sections.append(render_segments(data))
        if args.by_outcome:
            outcome = render_by_outcome(data)
            sections.append(outcome or "(no complete request traces)")
    else:
        sections.append(render_critical_report(data, width=args.width))
    _emit("\n\n".join(sections), args.output)
    return 0


def _cmd_whatif(args) -> int:
    """Causal what-if: replay a recorded run under virtual resource
    speedups; with ``--validate``, re-simulate for real and report the
    prediction error (exit 1 beyond ``--max-error``)."""
    from .obs.whatif import (
        parse_scenario,
        predict,
        render_predictions,
        render_whatif_report,
        validate_scenarios,
    )

    try:
        scenarios = [parse_scenario(s) for s in args.scenarios]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.validate:
        rows = validate_scenarios(
            scenarios,
            n_nodes=args.nodes,
            n_requests=args.requests,
            cpu_time=args.cpu_time,
        )
        _emit(render_whatif_report(rows, max_error=args.max_error), args.output)
        worst = max(rows, key=lambda r: r.error)
        return 1 if worst.error > args.max_error else 0

    if not args.trace:
        print(
            "error: replay mode needs --trace (a --trace-out JSONL); or "
            "pass --validate to simulate",
            file=sys.stderr,
        )
        return 2
    from .obs import load_jsonl, load_profile

    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"error: no such trace file: {trace_path}", file=sys.stderr)
        return 2
    dump = load_jsonl(trace_path, strict=False)
    intervals = None
    if args.profile:
        profile_path = Path(args.profile)
        if not profile_path.exists():
            print(
                f"error: no such profile file: {profile_path}", file=sys.stderr
            )
            return 2
        try:
            profile = load_profile(profile_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        intervals = profile.get("intervals")
        if intervals is None:
            print(
                "warning: profile has no span-linked intervals (record with "
                "--critical-out); falling back to span categories",
                file=sys.stderr,
            )
    predictions = [predict(dump, intervals, None)]
    predictions += [predict(dump, intervals, s) for s in scenarios]
    _emit(render_predictions(predictions), args.output)
    return 0


def _cmd_describe_trace(args) -> int:
    path = Path(args.tracefile)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    trace = load_trace(path)
    _emit(render_trace_summary(describe_trace(trace, top_k=args.top)), args.output)
    return 0


def _cmd_bench(args) -> int:
    # Imported lazily: the bench module pulls in the whole stack and the
    # other subcommands should not pay for that at startup.
    from . import bench as _bench

    names = args.only or None
    if names:
        unknown = [n for n in names if n not in _bench.BENCH_WORKLOADS]
        if unknown:
            print(
                "error: unknown benchmark(s): " + ", ".join(unknown)
                + "; choose from " + ", ".join(_bench.BENCH_WORKLOADS),
                file=sys.stderr,
            )
            return 2
    results = _bench.run_bench(rounds=args.rounds, names=names)
    print(_bench.render_bench(results))
    out = Path(args.output) if args.output else Path(
        f"BENCH_{time.strftime('%Y-%m-%d')}.json"
    )
    report = _bench.write_bench_report(results, out)
    print(f"\n(report written to {out}; peak RSS {report['peak_rss_kb']} kB)")
    if args.compare:
        if args.compare == "auto":
            # Bare --compare: newest committed snapshot by date-stamped
            # name (the same rule CI uses), never the report just written.
            candidates = sorted(
                c for c in Path(".").glob("BENCH_2*.json")
                if c.resolve() != out.resolve()
            )
            if not candidates:
                print(
                    "error: --compare found no committed BENCH_2*.json "
                    "in the current directory",
                    file=sys.stderr,
                )
                return 2
            snap_path = candidates[-1]
        else:
            snap_path = Path(args.compare)
        if not snap_path.exists():
            print(f"error: no such snapshot: {snap_path}", file=sys.stderr)
            return 2
        import json as _json

        snapshot = _json.loads(snap_path.read_text())
        text, regressed = _bench.compare_with_snapshot(
            results, snapshot, threshold=args.compare_threshold
        )
        print(f"\ncomparison against {snap_path}:\n{text}")
        if regressed:
            msg = (
                f"bench gate: {len(regressed)} workload(s) regressed more "
                f"than {args.compare_threshold:.0%} vs {snap_path}: "
                + ", ".join(regressed)
            )
            if args.compare_warn_only:
                print(f"warning: {msg}", file=sys.stderr)
            else:
                print(f"error: {msg}", file=sys.stderr)
                return 1
    return 0


def _cmd_all(args) -> int:
    outdir = Path(args.output_dir)
    outdir.mkdir(parents=True, exist_ok=True)
    n_jobs = args.jobs
    jobs = [
        ("table1", lambda: ex.render_table1(ex.run_table1())),
        ("table2", lambda: ex.render_table2(ex.run_table2(jobs=n_jobs))),
        ("figure3", lambda: ex.render_figure3(ex.run_figure3(jobs=n_jobs))),
        ("figure4", lambda: ex.render_figure4(ex.run_figure4(jobs=n_jobs))),
        ("table3", lambda: ex.render_table3(ex.run_table3())),
        ("table4", lambda: ex.render_table4(ex.run_table4())),
        ("table5", lambda: ex.render_hit_ratio_table(
            ex.run_table5(jobs=n_jobs), 2_000)),
        ("table6", lambda: ex.render_hit_ratio_table(
            ex.run_table6(jobs=n_jobs), 20)),
    ]
    for name, job in jobs:
        text = job()
        (outdir / f"{name}.txt").write_text(text + "\n")
        print(text)
        print()
    print(f"all artifacts written to {outdir}/")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Swala (HPDC '98) reproduction: regenerate paper tables/"
        "figures, run ablations, analyze logs, synthesize traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def observability(p):
        p.add_argument(
            "--trace-out",
            help="collect per-request spans and write them (JSONL; analyze "
            "with `repro trace`)",
        )
        p.add_argument(
            "--metrics-out",
            help="scrape run metrics into a registry and write it "
            "(.json => JSON, else Prometheus text)",
        )
        p.add_argument(
            "--audit-out",
            help="attach the consistency oracle and write the per-request "
            "audit (JSONL; inspect with `repro audit`)",
        )
        p.add_argument(
            "--timeseries-out",
            help="sample per-node counters (and oracle anomaly counts) "
            "every --timeseries-dt simulated seconds into a JSONL timeline",
        )
        p.add_argument(
            "--timeseries-dt", type=float, default=1.0, metavar="SECONDS",
            help="sampling interval for --timeseries-out (default 1.0)",
        )
        p.add_argument(
            "--profile-out",
            help="probe every simulated resource (CPUs, disks, NICs, "
            "mailboxes, thread pools, directory locks) and write the "
            "utilization profile (JSON; inspect with `repro profile`)",
        )
        p.add_argument(
            "--critical-out",
            help="trace spans + span-linked resource intervals and write "
            "the critical-path blame aggregate (JSON; inspect with "
            "`repro critical`); implies tracing and interval profiling",
        )
        p.add_argument(
            "--streaming-out",
            help="aggregate completions into fixed-width sim-time windows "
            "(rates, hit ratio, sketched latency quantiles) and write the "
            "per-window JSONL; perturbation-free (no events scheduled), "
            "gzip when the path ends in .gz",
        )
        p.add_argument(
            "--streaming-window", type=float, default=1.0, metavar="SECONDS",
            help="window width for --streaming-out (default 1.0)",
        )

    def scheduler_opt(p):
        p.add_argument(
            "--scheduler", choices=["heap", "calendar", "ladder"],
            default=None,
            help="pending-event set for every simulator this command "
            "creates (default heap; calendar/ladder win on very large "
            "event populations — results are identical either way)",
        )

    def positive_shards(value):
        k = int(value)
        if k < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {k}")
        return k

    def parallel_sim_opt(p):
        p.add_argument(
            "--parallel-sim", type=positive_shards, default=None, metavar="K",
            help="shard each cluster simulation over K simulators under "
            "conservative (lookahead = LAN latency) synchronization; "
            "results and observability exports match the serial run "
            "(verify with `repro diff`); only --audit-out forces the "
            "run back to serial",
        )
        p.add_argument(
            "--sim-backend", choices=["auto", "inline", "process"],
            default=None,
            help="how --parallel-sim shards execute: OS processes, "
            "in-process round-robin (inline; for equivalence checks and "
            "single-CPU boxes), or auto per machine (default)",
        )

    def common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--output", help="also write the table to this file")
        p.add_argument("--export", help="write structured rows (.csv/.json)")
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fan independent runs over N worker processes (sweep "
            "commands; results and observability exports are identical "
            "to a serial run; only --audit-out falls back to serial)",
        )
        scheduler_opt(p)
        parallel_sim_opt(p)
        observability(p)

    p = sub.add_parser("table1", help="ADL log caching-potential analysis")
    common(p)
    p.add_argument("--scale", type=float, default=1.0,
                   help="shrink the synthetic log by this factor")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="WebStone file-fetch server comparison")
    common(p)
    p.add_argument("--clients", type=int, nargs="+", default=[4, 8, 16, 32, 64])
    p.add_argument("--requests-per-client", type=int, default=25)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("figure3", help="null-CGI response-time comparison")
    common(p)
    p.add_argument("--clients", type=int, default=24)
    p.add_argument("--requests-per-client", type=int, default=20)
    p.set_defaults(func=_cmd_figure3)

    p = sub.add_parser("figure4", help="multi-node scaling, cache vs no-cache")
    common(p)
    p.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 6, 8])
    p.add_argument("--scale", type=float, default=0.02)
    p.set_defaults(func=_cmd_figure4)

    p = sub.add_parser("table3", help="insert+broadcast overhead")
    common(p)
    p.add_argument("--nodes", type=int, nargs="+", default=[2, 3, 4, 5, 6, 7, 8])
    p.add_argument("--requests", type=int, default=180)
    p.add_argument(
        "--directory", choices=["broadcast", "digest", "bloom"],
        default="broadcast",
        help="directory-sync protocol for the cooperative runs "
        "(default: the paper's broadcast)",
    )
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser(
        "directory-grid",
        help="directory-protocol cost grid: broadcast vs digest vs Bloom "
        "deltas across cluster sizes",
    )
    common(p)
    p.add_argument(
        "--nodes", type=int, nargs="+", default=[8, 64, 256, 1024],
        help="cluster sizes to sweep (1024 pairs well with --parallel-sim)",
    )
    p.add_argument(
        "--protocols", nargs="+", default=["broadcast", "digest", "bloom"],
        choices=["broadcast", "digest", "bloom"],
    )
    p.add_argument(
        "--mixes", nargs="+", default=["webstone", "adl"],
        choices=["webstone", "adl"],
    )
    p.add_argument(
        "--threads", type=int, default=64,
        help="client threads == max active nodes (default 64)",
    )
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink both workload mixes proportionally (smoke runs)",
    )
    p.add_argument("--json-out", help="write per-cell records as JSON")
    p.set_defaults(func=_cmd_directory_grid)

    p = sub.add_parser("table4", help="directory-update overhead")
    common(p)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.0, 10.0, 20.0, 50.0, 100.0])
    p.add_argument("--requests", type=int, default=180)
    p.set_defaults(func=_cmd_table4)

    for which, size in (("table5", 2_000), ("table6", 20)):
        p = sub.add_parser(which, help=f"hit ratios, cache size {size}")
        common(p)
        p.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 6, 8])
        p.set_defaults(func=_cmd_table5 if which == "table5" else _cmd_table6)

    p = sub.add_parser("ablation", help="run one of the ablation studies")
    common(p)
    p.add_argument(
        "which",
        choices=["policies", "locking", "ttl", "invalidation", "balancer",
                 "threshold", "cache-size"],
    )
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("study", help="run one of the topology/capacity studies")
    common(p)
    p.add_argument("which", choices=["proxy", "capacity", "heterogeneity"])
    p.set_defaults(func=_cmd_study)

    p = sub.add_parser(
        "capacity",
        help="SLO-driven saturation search: ramp + bisection to the max "
        "sustainable req/s per cluster size, annotated with the "
        "profiler's bottleneck resource at the knee",
    )
    p.add_argument(
        "--nodes", type=int, nargs="+", default=[1, 4, 8, 16], metavar="N",
        help="cluster sizes to sweep (default 1 4 8 16)",
    )
    p.add_argument(
        "--mode", choices=["none", "standalone", "cooperative"],
        default="cooperative",
    )
    p.add_argument(
        "--window", type=float, default=1.0, metavar="SECONDS",
        help="telemetry window width (default 1.0)",
    )
    p.add_argument(
        "--duration", type=float, default=20.0, metavar="SECONDS",
        help="offered-load phase per probe run (default 20.0)",
    )
    p.add_argument("--start-rate", type=float, default=4.0, metavar="R",
                   help="ramp origin, req/s (default 4.0)")
    p.add_argument("--max-rate", type=float, default=4096.0, metavar="R",
                   help="give up ramping above this rate (default 4096)")
    p.add_argument("--growth", type=float, default=2.0,
                   help="ramp multiplier per hold period (default 2.0)")
    p.add_argument(
        "--precision", type=float, default=0.05,
        help="stop bisecting when hi/lo - 1 <= this (default 0.05)",
    )
    p.add_argument("--max-probes", type=int, default=12,
                   help="bisection probe budget per cluster size")
    p.add_argument("--slo-p99", type=float, default=2.0, metavar="SECONDS",
                   help="windowed p99 latency bound (default 2.0)")
    p.add_argument("--max-rho", type=float, default=1.0,
                   help="Little's-law utilization bound (default 1.0)")
    p.add_argument(
        "--queue-growth-frac", type=float, default=0.25,
        help="flag a window when backlog grows by more than this fraction "
        "of its expected arrivals (default 0.25)",
    )
    p.add_argument("--consecutive", type=int, default=3, metavar="K",
                   help="flagged windows in a row that declare saturation")
    p.add_argument("--warmup-windows", type=int, default=2,
                   help="initial windows exempt from flagging (cold cache)")
    p.add_argument("--distinct", type=int, default=200,
                   help="distinct CGI URLs in the Zipf workload")
    p.add_argument("--cpu-time", type=float, default=0.2, metavar="SECONDS",
                   help="mean CGI service demand (default 0.2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="also write the table to this file")
    p.add_argument(
        "--json-out",
        help="write the knee report (deterministic JSON; diff with "
        "`repro diff`, e.g. against results/capacity_knee.json)",
    )
    p.add_argument("--txt-out",
                   help="write the rendered table next to --json-out")
    p.add_argument(
        "--windows-out",
        help="write every probe's per-window telemetry (JSONL, tagged "
        "with cell/phase/rate; gzip when the path ends in .gz)",
    )
    p.add_argument(
        "--dashboard", action="store_true",
        help="render an ASCII sparkline dashboard of each knee probe",
    )
    scheduler_opt(p)
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("analyze-log", help="Table-1 analysis of a real CLF log")
    common(p)
    p.add_argument("logfile")
    p.add_argument("--thresholds", type=float, nargs="+",
                   default=[0.1, 0.5, 1.0, 2.0])
    p.add_argument("--default-cgi-time", type=float, default=1.6)
    p.set_defaults(func=_cmd_analyze_log)

    p = sub.add_parser("gen-trace", help="synthesize a workload trace file")
    p.add_argument("kind", choices=["adl", "webstone", "zipf", "hit-ratio"])
    p.add_argument("-o", "--out", required=True)
    p.add_argument("-n", type=int, default=1_000, help="request count")
    p.add_argument("-d", "--distinct", type=int, default=200)
    p.add_argument("--scale", type=float, default=0.05, help="(adl only)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_gen_trace)

    p = sub.add_parser(
        "run-config",
        help="run a saved trace against a cluster built from a Swala "
        "configuration file",
    )
    p.add_argument("configfile")
    p.add_argument("--trace", required=True, help="trace file (.jsonl)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--clients", type=int, default=16)
    p.add_argument("--output", help="also write the report to this file")
    scheduler_opt(p)
    parallel_sim_opt(p)
    observability(p)
    p.set_defaults(func=_cmd_run_config)

    p = sub.add_parser(
        "trace",
        help="latency breakdowns / percentiles / timeline from a span "
        "trace written with --trace-out",
    )
    p.add_argument("tracefile")
    p.add_argument("--breakdown", action="store_true",
                   help="latency category shares per cache outcome")
    p.add_argument("--percentiles", action="store_true",
                   help="response-time percentile table per cache outcome")
    p.add_argument("--timeline", action="store_true",
                   help="ASCII span timeline of one request")
    p.add_argument("--trace-id", type=int, default=None,
                   help="which trace for --timeline (default: first complete)")
    p.add_argument("--width", type=int, default=48,
                   help="timeline bar width in characters")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "audit",
        help="consistency-audit report (anomaly taxonomy, staleness "
        "windows, per-node timelines) from a file written with --audit-out",
    )
    p.add_argument("auditfile")
    p.add_argument("--taxonomy", action="store_true",
                   help="only the anomaly taxonomy table")
    p.add_argument("--staleness", action="store_true",
                   help="only the broadcast staleness-window distribution")
    p.add_argument("--timeline", action="store_true",
                   help="only the per-node anomaly sparklines")
    p.add_argument("--bins", type=int, default=60,
                   help="timeline resolution in bins (default 60)")
    p.add_argument("--timeseries", metavar="FILE",
                   help="also render the sparkline dashboard from a "
                   "--timeseries-out file")
    p.add_argument("--series", nargs="*", metavar="SUBSTR",
                   help="filter dashboard series by substring")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "profile",
        help="per-node bottleneck report and resource utilization tables "
        "from a file written with --profile-out; optionally fold a span "
        "trace into a flame graph",
    )
    p.add_argument("profilefile")
    p.add_argument("--run", type=int, default=None,
                   help="which run to report (default: last)")
    p.add_argument("--node", metavar="NAME",
                   help="restrict the resource table to one node")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="show only the N most saturated resources")
    p.add_argument("--bottlenecks", action="store_true",
                   help="only the per-node bottleneck table")
    p.add_argument("--resources", action="store_true",
                   help="only the full resource table")
    p.add_argument("--trace", metavar="SPANS",
                   help="also fold this --trace-out JSONL into a flame graph")
    p.add_argument("--folded-out", metavar="FILE",
                   help="write folded stacks (flamegraph.pl/speedscope "
                   "format); requires --trace")
    p.add_argument("--width", type=int, default=60,
                   help="flame-chart bar width in characters")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "diff",
        help="compare two observability exports (profile/metrics JSON, "
        "audit/timeseries/trace JSONL) counter by counter; exits 1 on "
        "drift beyond --threshold",
    )
    p.add_argument("baseline")
    p.add_argument("current")
    p.add_argument("--threshold", type=float, default=0.0, metavar="FRAC",
                   help="allowed relative change per counter (default 0: "
                   "any drift fails)")
    p.add_argument("--abs-threshold", type=float, default=1e-9,
                   metavar="DELTA",
                   help="ignore absolute changes at or below this "
                   "(default 1e-9, swallows float noise)")
    p.add_argument("--ignore", action="append", metavar="SUBSTR",
                   help="skip counters whose name contains this (repeatable)")
    p.add_argument("--only", action="append", metavar="SUBSTR",
                   help="compare only counters whose name contains this "
                   "(repeatable)")
    p.add_argument("--max-rows", type=int, default=50,
                   help="max drifted counters to print (default 50)")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "critical",
        help="critical-path blame report (which resource the latency is "
        "actually spent on) from a --critical-out aggregate, or "
        "recomputed from raw --trace-out/--profile-out exports",
    )
    p.add_argument("criticalfile", nargs="?", default=None,
                   help="a --critical-out JSON aggregate")
    p.add_argument("--trace", metavar="SPANS",
                   help="recompute from this --trace-out JSONL instead")
    p.add_argument("--profile", metavar="PROFILE",
                   help="span-linked intervals for --trace (a --profile-out "
                   "JSON recorded alongside --critical-out)")
    p.add_argument("--export", metavar="FILE",
                   help="also write the recomputed aggregate (requires "
                   "--trace)")
    p.add_argument("--segments", action="store_true",
                   help="only the blame-segment table")
    p.add_argument("--by-outcome", action="store_true",
                   help="only the per-outcome blame table")
    p.add_argument("--width", type=int, default=60,
                   help="blame flame-chart bar width in characters")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(func=_cmd_critical)

    p = sub.add_parser(
        "whatif",
        help="causal what-if: replay a recorded run under virtual resource "
        "speedups (cpu:2, disk:4, lan:4, nodes:+1); --validate re-simulates "
        "for real and exits 1 if the prediction error exceeds --max-error",
    )
    p.add_argument("--scenarios", nargs="+", required=True, metavar="RES:K",
                   help="speedup hypotheses, e.g. cpu:2 disk:2 lan:4 "
                   "nodes:+1")
    p.add_argument("--trace", metavar="SPANS",
                   help="replay this --trace-out JSONL (replay mode)")
    p.add_argument("--profile", metavar="PROFILE",
                   help="span-linked intervals for --trace (profile "
                   "recorded alongside --critical-out)")
    p.add_argument("--validate", action="store_true",
                   help="record a baseline cell, predict each scenario, "
                   "then actually re-run with scaled rates and report the "
                   "prediction error")
    p.add_argument("--nodes", type=int, default=2,
                   help="cluster size for --validate cells (default 2)")
    p.add_argument("--requests", type=int, default=40,
                   help="requests per --validate cell (default 40)")
    p.add_argument("--cpu-time", type=float, default=1.0,
                   help="per-request CGI CPU seconds in --validate cells")
    p.add_argument("--max-error", type=float, default=0.10, metavar="FRAC",
                   help="allowed relative prediction error before exit 1 "
                   "(default 0.10)")
    p.add_argument("--output", help="also write the report to this file")
    p.set_defaults(func=_cmd_whatif)

    p = sub.add_parser("describe-trace", help="summarize a saved trace file")
    p.add_argument("tracefile")
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--output", help="also write the summary to this file")
    p.set_defaults(func=_cmd_describe_trace)

    p = sub.add_parser(
        "bench",
        help="time the engine microbenchmarks and write a BENCH_<date>.json",
    )
    p.add_argument(
        "--rounds", type=int, default=5,
        help="measured rounds per workload after one warmup (default 5)",
    )
    p.add_argument(
        "--only", nargs="*", metavar="NAME",
        help="subset of workloads to run (default: all)",
    )
    p.add_argument(
        "--output", default=None,
        help="report path (default BENCH_<date>.json in the current dir)",
    )
    p.add_argument(
        "--compare", metavar="SNAPSHOT", nargs="?", const="auto",
        help="compare events/sec against a committed BENCH_*.json and "
        "exit 1 on regression beyond --compare-threshold; with no "
        "SNAPSHOT, the newest committed BENCH_2*.json is used",
    )
    p.add_argument(
        "--compare-threshold", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional events/sec regression before the gate "
        "trips (default 0.25)",
    )
    p.add_argument(
        "--compare-warn-only", action="store_true",
        help="report regressions but always exit 0 (for noisy machines)",
    )
    scheduler_opt(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("all", help="regenerate every table and figure")
    p.add_argument("--output-dir", default="results")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep-style tables/figures",
    )
    scheduler_opt(p)
    parallel_sim_opt(p)
    p.set_defaults(func=_cmd_all)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if (
        getattr(args, "audit_out", None)
        and getattr(args, "parallel_sim", None)
        and getattr(args, "sim_backend", None) == "process"
    ):
        # Every other observer merges from shards; the consistency oracle
        # needs the global event order, so an audited run is serial.  With
        # the inline/auto backends we downgrade with a warning, but a user
        # who *explicitly* asked for OS-process shards AND an audit asked
        # for two incompatible things — refuse rather than silently ignore
        # one of them.
        parser.error(
            "--audit-out cannot be combined with --sim-backend process: "
            "the consistency oracle audits the global event order and "
            "cannot be merged from process-isolated shards. Drop "
            "--audit-out, or use --sim-backend inline/auto to let the "
            "run fall back to serial (with a warning)."
        )
    scheduler = getattr(args, "scheduler", None)
    if scheduler:
        # Process-global: every Simulator the command creates (including
        # those inside --jobs worker processes, which receive the name
        # via the pool initializer) uses this pending-event set.
        from .sim import set_default_scheduler

        set_default_scheduler(scheduler)
    partitions = getattr(args, "parallel_sim", None)
    if partitions:
        # Same process-global pattern as --scheduler: cluster-run helpers
        # deep inside experiment code consult it via sim_partitions().
        from .sim.pdes import set_sim_partitions

        set_sim_partitions(partitions, getattr(args, "sim_backend", None) or "auto")
    with _observability(args):
        return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
